//! Write-back LRU buffer pool with sequential read-ahead.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::disk::SimDisk;
use crate::error::Result;
use crate::file::FileId;
use crate::obs::{self, QueryId};
use crate::page::PageId;
use crate::stats::IoStats;

/// A planner-supplied prefetch hint: the chosen access path expects to
/// read roughly `est_run_pages` physically contiguous pages starting at
/// `start_page` (a clustered heap run, a range scan, a full scan).
///
/// Pass to [`BufferPool::hint_run`] *before* the run's first page is
/// requested. A hinted run arms sequential read-ahead on its **first**
/// cold miss — the unhinted detector needs two adjacent misses before it
/// trusts the pattern — and sizes the prefetch window from the estimated
/// run length instead of the fixed
/// [`DiskConfig::readahead_pages`](crate::DiskConfig::readahead_pages)
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessHint {
    /// First page of the expected run (e.g. the B+Tree leaf a clustered
    /// probe will land on).
    pub start_page: PageId,
    /// Estimated run length in pages, **including** `start_page`. An
    /// overestimate costs at most one over-sized (but physically
    /// contiguous, hence cheap) prefetch batch; an underestimate degrades
    /// gracefully into the unhinted two-miss detector.
    pub est_run_pages: usize,
}

/// Named buffer-pool counters, cumulative since creation.
///
/// Snapshot with [`BufferPool::counters`] before and after a query and
/// subtract with [`since`](PoolCounters::since) to attribute page traffic
/// to that query (the `upi-query` executor does exactly this and threads
/// the delta into `PhysicalPlan` explain output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Gets served from a cached frame.
    pub hits: u64,
    /// Gets that had to read the device.
    pub misses: u64,
    /// Frames evicted to stay under capacity.
    pub evictions: u64,
    /// Pages prefetched by sequential read-ahead.
    pub readahead: u64,
    /// Hits served from a frame that read-ahead installed (the payoff).
    pub readahead_hits: u64,
    /// Planner hints consumed: runs whose read-ahead was armed by an
    /// [`AccessHint`] on their first miss (instead of the two-adjacent-
    /// miss detector).
    pub hinted_runs: u64,
    /// Eviction flushes that failed (e.g. the page was freed underneath
    /// the pool). Non-zero means a write was dropped — surfaced here
    /// instead of being silently swallowed by `put`.
    pub flush_errors: u64,
    /// Transient device faults that an eviction or flush write-back
    /// retried through successfully. Non-zero means the device
    /// misbehaved but no data was lost — the distinction
    /// `explain_analyze` draws against `flush_errors`/degraded mode.
    pub flush_retries: u64,
    /// Prefetched pages that left the cache (evicted, or dropped by a
    /// cold reset) without ever serving a demand get: speculative reads
    /// whose device time bought nothing. Non-zero means read-ahead armed
    /// on an access pattern that was not actually a run.
    pub readahead_wasted: u64,
}

impl PoolCounters {
    /// Pages that reached the device on behalf of reads (demand misses
    /// plus read-ahead) — the "pages read" a query is charged for.
    pub fn pages_read(&self) -> u64 {
        self.misses + self.readahead
    }

    /// Pages fetched on **demand** (cold misses): each is potentially a
    /// scattered read that pays a head move. One half of the per-query
    /// read split an observed-cost model wants.
    pub fn demand_pages(&self) -> u64 {
        self.misses
    }

    /// Pages fetched **speculatively** by sequential read-ahead: batched
    /// contiguous transfers that pay (at most) one head move per batch.
    /// The other half of the per-query read split — a query whose reads
    /// are mostly sequential lands here, so an observed-cost model can
    /// price the two halves differently.
    pub fn sequential_pages(&self) -> u64 {
        self.readahead
    }

    /// Component-wise difference (`self - earlier`).
    pub fn since(&self, earlier: &PoolCounters) -> PoolCounters {
        PoolCounters {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            evictions: self.evictions - earlier.evictions,
            readahead: self.readahead - earlier.readahead,
            readahead_hits: self.readahead_hits - earlier.readahead_hits,
            hinted_runs: self.hinted_runs - earlier.hinted_runs,
            flush_errors: self.flush_errors - earlier.flush_errors,
            flush_retries: self.flush_retries - earlier.flush_retries,
            readahead_wasted: self.readahead_wasted - earlier.readahead_wasted,
        }
    }
}

impl std::fmt::Display for PoolCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} readahead={} (ra-hits={} ra-wasted={}) hinted-runs={} evictions={} flush-errors={} flush-retries={}",
            self.hits,
            self.misses,
            self.readahead,
            self.readahead_hits,
            self.readahead_wasted,
            self.hinted_runs,
            self.evictions,
            self.flush_errors,
            self.flush_retries
        )
    }
}

/// A write-back LRU page cache in front of a [`SimDisk`].
///
/// * [`get`](BufferPool::get) returns the cached frame without touching the
///   device; a miss reads from disk (charging the simulated clock).
/// * [`put`](BufferPool::put) installs a dirty frame; the device is only
///   touched when the frame is evicted or flushed.
/// * [`flush_all`](BufferPool::flush_all) writes dirty frames **sorted by
///   physical offset** (elevator order), so a bulk load whose frames are
///   contiguous pays sequential-write cost, exactly like an OS writeback
///   pass.
/// * Two consecutive misses at physically adjacent offsets of one file
///   switch that position into **run mode**: the next
///   [`DiskConfig::readahead_pages`](crate::DiskConfig::readahead_pages)
///   contiguous pages are prefetched in one batch while the head is
///   already there. Up to [`MAX_TRACKED_RUNS`] runs are tracked
///   concurrently, so a k-way merge that interleaves reads across k
///   component files (a fractured UPI probe) keeps every component's run
///   streaming — a switch to another file no longer resets the detector.
/// * A planner that *knows* the chosen access path is a long sequential
///   run can skip the detection latency entirely:
///   [`hint_run`](BufferPool::hint_run) arms read-ahead on the run's
///   **first** miss and sizes the window from the estimated run length
///   (see [`AccessHint`]). Up to [`MAX_PENDING_HINTS`] hints may be
///   pending at once — one per component of a fracture-parallel plan —
///   each armed, discharged, or cleared
///   ([`clear_hint`](BufferPool::clear_hint)) independently of its
///   siblings.
///
/// The pool must be configured *smaller* than the experimental tables to
/// reproduce the paper's disk-bound regime; the benchmark harness does this
/// and additionally clears the pool between queries (cold cache).
pub struct BufferPool {
    disk: Arc<SimDisk>,
    inner: Mutex<PoolInner>,
    capacity: usize,
}

struct Frame {
    data: Bytes,
    dirty: bool,
    /// Installed by read-ahead and not yet touched by a demand get.
    prefetched: bool,
    /// LRU chain: previous (colder) / next (hotter) page ids.
    prev: Option<PageId>,
    next: Option<PageId>,
}

/// State of one sequential run the pool is tracking. The pool keeps up to
/// [`MAX_TRACKED_RUNS`] of these concurrently, so a k-way merge that
/// interleaves reads across k component files (a fractured UPI's
/// fracture-parallel probe) keeps each component's run streaming instead
/// of resetting the detector on every file switch.
#[derive(Debug, Clone, Copy)]
struct RunState {
    /// File the run lives in.
    file: FileId,
    /// Offset just past the last demand-missed or prefetched page: where
    /// the next miss lands if the read pattern is a sequential run.
    next: u64,
    /// For hinted runs: estimated pages still ahead of `next`. `Some`
    /// sizes each prefetch batch from the remaining run length (capped at
    /// [`HINTED_BATCH_PAGES`]); `None` (unhinted, or a hint that ran out)
    /// uses the fixed `DiskConfig::readahead_pages` window.
    hinted_remaining: Option<usize>,
}

/// Upper bound on one hinted prefetch batch, in pages. Bounds the single
/// contiguous transfer a hint can trigger (and the pool-capacity pressure
/// of speculative frames) while still letting a long hinted run stream in
/// a few large batches instead of one fixed-size window per 8 pages.
const HINTED_BATCH_PAGES: usize = 64;

/// How many concurrent sequential runs the pool tracks (LRU-evicted).
/// Sized for a fractured UPI's k-way merge — main + a handful of
/// fractures, each with a heap and a cutoff file in flight.
const MAX_TRACKED_RUNS: usize = 16;

/// How many planner hints may be pending at once (LRU-evicted). One per
/// component of the largest plausible fracture-parallel plan.
const MAX_PENDING_HINTS: usize = 16;

#[derive(Default)]
struct PoolInner {
    frames: HashMap<PageId, Frame>,
    bytes: usize,
    /// Coldest frame (eviction candidate).
    head: Option<PageId>,
    /// Hottest frame (most recently used).
    tail: Option<PageId>,
    counters: PoolCounters,
    /// Concurrently tracked runs (see [`RunState`]), oldest first.
    runs: Vec<RunState>,
    /// Pending planner hints ([`BufferPool::hint_run`]), oldest first:
    /// each is consumed by the next access to its start page,
    /// independently of the others.
    pending_hints: Vec<AccessHint>,
    /// While non-zero, raw misses do not create new run-tracker state
    /// (see [`BufferPool::attributed`] /
    /// [`AttributedGuard::suppress_run_detection`]): a scatter-shaped
    /// access pattern whose plan carries no hints cannot arm speculative
    /// read-ahead. Hinted runs — and continuations of already-armed
    /// runs — still stream.
    suppress_runs: u32,
    /// Degraded read-only mode: `Some(reason)` after a write-back failed
    /// persistently (not transiently) or the durability layer could not
    /// advance the WAL. Reads keep working; the session layer rejects
    /// mutations while this is set instead of silently bumping a counter.
    poisoned: Option<String>,
}

/// Bounded retries a write-back attempts against transient device faults
/// before declaring the failure persistent.
const WRITEBACK_RETRIES: u32 = 4;

/// Per-retry backoff charged to the simulated clock, ms.
const RETRY_BACKOFF_MS: f64 = 0.2;

impl PoolInner {
    /// Index of the pending hint whose run starts at `pid`, if any.
    fn hint_index(&self, pid: PageId) -> Option<usize> {
        self.pending_hints.iter().position(|h| h.start_page == pid)
    }

    /// Replace (or insert) the tracked run continuing at `(file, at)`.
    fn note_run(&mut self, file: FileId, at: u64, state: RunState) {
        if let Some(i) = self
            .runs
            .iter()
            .position(|r| r.file == file && r.next == at)
        {
            self.runs.remove(i);
        }
        self.runs.push(state);
        if self.runs.len() > MAX_TRACKED_RUNS {
            self.runs.remove(0);
        }
    }
}

impl BufferPool {
    /// Create a pool that caches at most `capacity_bytes` of page data.
    pub fn new(disk: Arc<SimDisk>, capacity_bytes: usize) -> Self {
        BufferPool {
            disk,
            inner: Mutex::new(PoolInner::default()),
            capacity: capacity_bytes,
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Arm a planner prefetch hint (see [`AccessHint`]): the next miss on
    /// `hint.start_page` triggers read-ahead immediately — no second
    /// adjacent miss required — with the window sized from
    /// `hint.est_run_pages` (in batches of at most [`HINTED_BATCH_PAGES`])
    /// instead of the fixed `readahead_pages` window.
    ///
    /// Up to [`MAX_PENDING_HINTS`] hints may be pending concurrently, one
    /// per expected run — a fracture-parallel merge arms one per
    /// component — and each is consumed (or discharged) independently: a
    /// new hint for the same start page replaces the old one, and a hint
    /// whose start page is already cached is discharged by the hit — the
    /// run needs no arming if its head is warm, and the ordinary detector
    /// covers any cold tail.
    pub fn hint_run(&self, hint: AccessHint) {
        let mut g = self.inner.lock();
        if let Some(i) = g.hint_index(hint.start_page) {
            g.pending_hints.remove(i);
        }
        g.pending_hints.push(hint);
        if g.pending_hints.len() > MAX_PENDING_HINTS {
            g.pending_hints.remove(0);
        }
    }

    /// Drop the pending [`hint_run`](Self::hint_run) hint starting at
    /// `start_page`, if one was never consumed — a caller that armed a
    /// hint and then failed before touching the run's start page must
    /// clear it, or the stale hint would mis-fire on the next unrelated
    /// cold miss of that page. Clearing is per-run: other pending hints
    /// (e.g. sibling components of the same fractured plan) are untouched.
    pub fn clear_hint(&self, start_page: PageId) {
        let mut g = self.inner.lock();
        if let Some(i) = g.hint_index(start_page) {
            g.pending_hints.remove(i);
        }
    }

    /// Read a page through the cache. A miss reads the device; two
    /// adjacent misses in a row — or a single miss on a hinted run's
    /// start page ([`hint_run`](Self::hint_run)) — trigger sequential
    /// read-ahead of the physically contiguous continuation (see the
    /// type docs).
    pub fn get(&self, pid: PageId) -> Result<Bytes> {
        let mut g = self.inner.lock();
        if g.frames.contains_key(&pid) {
            g.counters.hits += 1;
            if let Some(i) = g.hint_index(pid) {
                g.pending_hints.remove(i); // warm run head: hint is moot
            }
            let f = g.frames.get_mut(&pid).unwrap();
            let was_prefetched = std::mem::take(&mut f.prefetched);
            if was_prefetched {
                g.counters.readahead_hits += 1;
            }
            g.touch(pid);
            return Ok(g.frames[&pid].data.clone());
        }
        g.counters.misses += 1;
        // Run detection must happen before the read resets the head.
        let file = self.disk.page_file(pid)?;
        let offset = self.disk.page_offset(pid)?;
        let suppress = g.suppress_runs > 0;
        let sequential = g.runs.iter().any(|r| r.file == file && r.next == offset);
        let hinted_start = g.hint_index(pid).is_some();
        let mut hinted_remaining = None;
        if hinted_start {
            let i = g.hint_index(pid).unwrap();
            let hint = g.pending_hints.remove(i);
            g.counters.hinted_runs += 1;
            hinted_remaining = Some(hint.est_run_pages.saturating_sub(1));
        } else if sequential {
            hinted_remaining = g
                .runs
                .iter()
                .find(|r| r.file == file && r.next == offset)
                .and_then(|r| r.hinted_remaining);
        }
        drop(g);
        let data = self.disk.read_page(pid)?;
        let end = offset + data.len() as u64;
        let depth = if self.disk.config().readahead_pages == 0 {
            0 // read-ahead disabled outright, hints included
        } else if hinted_start {
            hinted_remaining.unwrap_or(0).min(HINTED_BATCH_PAGES)
        } else if sequential {
            match hinted_remaining {
                Some(r) if r > 0 => r.min(HINTED_BATCH_PAGES),
                _ => {
                    // Hint exhausted but the run evidently continues:
                    // fall back to the unhinted window.
                    hinted_remaining = None;
                    self.disk.config().readahead_pages
                }
            }
        } else {
            0
        };
        let prefetch = if depth > 0 {
            self.read_ahead(pid, depth)
        } else {
            Vec::new()
        };
        let mut g = self.inner.lock();
        g.insert(pid, data.clone(), false);
        let mut run_end = end;
        let mut prefetched = 0usize;
        for (ppid, pdata) in prefetch {
            run_end += pdata.len() as u64;
            if !g.frames.contains_key(&ppid) {
                g.counters.readahead += 1;
                g.insert(ppid, pdata, false);
                g.frames.get_mut(&ppid).unwrap().prefetched = true;
                prefetched += 1;
            }
        }
        // Under suppression a raw miss leaves no run state behind — only
        // hinted arming and the continuation of an already-armed run keep
        // tracking, so two adjacent scatter misses can never arm.
        if !suppress || hinted_start || sequential {
            g.note_run(
                file,
                offset,
                RunState {
                    file,
                    next: run_end,
                    hinted_remaining: hinted_remaining.map(|r| r.saturating_sub(prefetched)),
                },
            );
        }
        self.evict_overflow(&mut g)?;
        Ok(data)
    }

    /// Fetch the contiguous continuation of the run at `pid` (up to
    /// `depth` pages) in one batch: the head is already parked at the end
    /// of `pid`, so the batch costs one contiguous transfer. The window
    /// stops at the first page that is already cached (no device charge
    /// for frames the pool holds). Prefetch is speculative — any failure
    /// (e.g. a page freed between planning and reading the batch) yields
    /// an empty result rather than failing the demand read.
    fn read_ahead(&self, pid: PageId, depth: usize) -> Vec<(PageId, Bytes)> {
        let mut run = self.disk.contiguous_run_after(pid, depth);
        {
            let g = self.inner.lock();
            if let Some(cached) = run.iter().position(|p| g.frames.contains_key(p)) {
                run.truncate(cached);
            }
        }
        if run.is_empty() {
            return Vec::new();
        }
        match self.disk.read_run(&run) {
            Ok(datas) => run.into_iter().zip(datas).collect(),
            Err(_) => Vec::new(),
        }
    }

    /// Install a (dirty) frame for a page, deferring the device write.
    /// Eviction-flush failures are recorded in
    /// [`PoolCounters::flush_errors`] and — unless the page was simply
    /// freed underneath the pool — poison the pool into degraded mode
    /// (see [`degraded`](Self::degraded)); transient faults are retried
    /// with backoff first ([`PoolCounters::flush_retries`]).
    pub fn put(&self, pid: PageId, data: Bytes) {
        let mut g = self.inner.lock();
        g.insert(pid, data, true);
        let _ = self.evict_overflow(&mut g); // failures counted inside
    }

    /// Drop a page from the cache without writing it (used when a page is
    /// freed by the tree layer).
    pub fn discard(&self, pid: PageId) {
        let mut g = self.inner.lock();
        g.remove(pid);
    }

    /// Write all dirty frames to the device in physical-offset order and
    /// mark them clean. Frames stay cached.
    pub fn flush_all(&self) {
        let g = self.inner.lock();
        let mut dirty: Vec<PageId> = g
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&p, _)| p)
            .collect();
        drop(g);
        dirty.sort_by_key(|&p| self.disk.page_offset(p).unwrap_or(u64::MAX));
        for pid in dirty {
            let mut g = self.inner.lock();
            let data = match g.frames.get_mut(&pid) {
                Some(f) if f.dirty => {
                    f.dirty = false;
                    f.data.clone()
                }
                _ => continue,
            };
            drop(g);
            // Same retry/poison discipline as eviction write-backs. A
            // freed-underneath page no longer happens on the free paths
            // (they discard their frames first), but stays tolerated as
            // a moot write.
            let mut g = self.inner.lock();
            let _ = self.write_back(&mut g, pid, data);
        }
    }

    /// Drop every frame **without writing anything** — the cache contents
    /// are gone, as after a crash or power loss. This is the recovery
    /// path's reset: `clear()` would flush dirty frames, quietly making
    /// un-logged data durable and masking recovery bugs. Also lifts any
    /// degraded-mode poisoning (the reboot replaced the faulty device
    /// conditions) and resets run/hint tracking.
    pub fn drop_all(&self) {
        let mut g = self.inner.lock();
        let wasted = g.frames.values().filter(|f| f.prefetched).count() as u64;
        g.counters.readahead_wasted += wasted;
        g.frames.clear();
        g.bytes = 0;
        g.head = None;
        g.tail = None;
        g.runs.clear();
        g.pending_hints.clear();
        g.poisoned = None;
    }

    /// Put the pool into degraded read-only mode with a reason (the
    /// durability layer calls this when the WAL cannot advance). The
    /// first reason wins; later calls are no-ops.
    pub fn poison(&self, reason: &str) {
        self.inner
            .lock()
            .poisoned
            .get_or_insert_with(|| reason.to_string());
    }

    /// The degraded-mode reason, if the pool is poisoned. Reads keep
    /// working while this is `Some`; the session layer rejects mutations
    /// and `explain_analyze` surfaces the reason.
    pub fn degraded(&self) -> Option<String> {
        self.inner.lock().poisoned.clone()
    }

    /// Flush then drop every frame (cold cache). Run detection resets
    /// too. Prefetched frames that never served a demand get are counted
    /// as [`PoolCounters::readahead_wasted`] — the speculation is
    /// provably dead once the cache resets.
    pub fn clear(&self) {
        self.flush_all();
        let mut g = self.inner.lock();
        let wasted = g.frames.values().filter(|f| f.prefetched).count() as u64;
        g.counters.readahead_wasted += wasted;
        g.frames.clear();
        g.bytes = 0;
        g.head = None;
        g.tail = None;
        g.runs.clear();
        g.pending_hints.clear();
    }

    /// Cumulative counters since creation.
    pub fn counters(&self) -> PoolCounters {
        self.inner.lock().counters
    }

    /// Cumulative I/O statistics of the underlying simulated device.
    ///
    /// Everything that reads through this pool shares one device clock;
    /// snapshotting before and after an operation (and subtracting with
    /// [`IoStats::since`](crate::IoStats::since)) attributes *measured
    /// simulated milliseconds* — seek + transfer + open time — to that
    /// operation. The `upi-query` executor does exactly this to produce
    /// the observed side of cost-model calibration samples.
    pub fn device_stats(&self) -> crate::IoStats {
        self.disk.stats()
    }

    /// Open a scoped per-query attribution window (see [`crate::obs`]):
    /// until the returned guard drops, every device charge this thread
    /// causes — through the pool or directly on the disk — also accrues
    /// to `qid`'s slot, readable via
    /// [`attributed_stats`](Self::attributed_stats) /
    /// [`take_attributed`](Self::take_attributed). Guards nest (innermost
    /// id wins) and are per-thread: concurrent queries on other threads
    /// attribute to their own ids, so each query observes only its own
    /// device time instead of the store-wide clock delta.
    ///
    /// The guard must be dropped on the thread that created it.
    pub fn attributed(&self, qid: QueryId) -> AttributedGuard<'_> {
        obs::push_query(qid);
        AttributedGuard {
            pool: self,
            qid,
            suppressing: false,
        }
    }

    /// Snapshot of the I/O attributed to `qid` so far (non-consuming).
    pub fn attributed_stats(&self, qid: QueryId) -> IoStats {
        self.disk.attributed_stats(qid)
    }

    /// Remove and return the I/O attributed to `qid`.
    pub fn take_attributed(&self, qid: QueryId) -> IoStats {
        self.disk.take_attributed(qid)
    }

    /// Number of cached bytes right now.
    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    fn evict_overflow(&self, g: &mut PoolInner) -> Result<()> {
        while g.bytes > self.capacity {
            let victim = match g.head {
                Some(v) => v,
                None => break,
            };
            let frame = g.frames.get(&victim).expect("lru head must exist");
            let (dirty, data, prefetched) = (frame.dirty, frame.data.clone(), frame.prefetched);
            g.remove(victim);
            g.counters.evictions += 1;
            if prefetched {
                g.counters.readahead_wasted += 1;
            }
            if dirty {
                self.write_back(g, victim, data)?;
            }
        }
        Ok(())
    }

    /// One dirty write-back: retry transient faults with backoff; a
    /// persistent failure is counted and (for anything but a
    /// freed-underneath page, which means the write is moot) poisons the
    /// pool into degraded mode.
    fn write_back(&self, g: &mut PoolInner, pid: PageId, data: Bytes) -> Result<()> {
        let mut attempt = 0u32;
        loop {
            match self.disk.write_page(pid, data.clone()) {
                Ok(()) => return Ok(()),
                Err(crate::StorageError::Transient(_)) if attempt < WRITEBACK_RETRIES => {
                    attempt += 1;
                    g.counters.flush_retries += 1;
                    self.disk.charge_ms(RETRY_BACKOFF_MS * attempt as f64);
                }
                Err(e) => {
                    g.counters.flush_errors += 1;
                    if !matches!(e, crate::StorageError::FreedPage(_)) {
                        g.poisoned.get_or_insert_with(|| {
                            format!("dirty write-back of {pid:?} failed: {e}")
                        });
                    }
                    return Err(e);
                }
            }
        }
    }
}

/// RAII attribution window from [`BufferPool::attributed`]: pushes its
/// [`QueryId`] onto the thread's attribution stack on creation and pops
/// it on drop. Optionally also suppresses run-detection arming for its
/// lifetime ([`suppress_run_detection`](Self::suppress_run_detection)).
pub struct AttributedGuard<'a> {
    pool: &'a BufferPool,
    qid: QueryId,
    suppressing: bool,
}

impl AttributedGuard<'_> {
    /// Additionally suppress run-detection arming while this guard
    /// lives: raw cache misses no longer create run-tracker state, so a
    /// scatter-shaped access pattern (a plan whose chosen candidate
    /// carries no [`AccessHint`]s) cannot trick the two-adjacent-miss
    /// detector into speculative read-ahead. Planner hints — and runs
    /// they already armed — still stream normally.
    pub fn suppress_run_detection(mut self) -> Self {
        if !self.suppressing {
            self.pool.inner.lock().suppress_runs += 1;
            self.suppressing = true;
        }
        self
    }

    /// The query this guard attributes to.
    pub fn query_id(&self) -> QueryId {
        self.qid
    }

    /// Snapshot of the I/O attributed to this guard's query so far.
    pub fn stats(&self) -> IoStats {
        self.pool.attributed_stats(self.qid)
    }
}

impl Drop for AttributedGuard<'_> {
    fn drop(&mut self) {
        if self.suppressing {
            let mut g = self.pool.inner.lock();
            g.suppress_runs = g.suppress_runs.saturating_sub(1);
        }
        obs::pop_query();
    }
}

impl PoolInner {
    /// Unlink `pid` from the LRU chain (must be present).
    fn unlink(&mut self, pid: PageId) {
        let (prev, next) = {
            let f = &self.frames[&pid];
            (f.prev, f.next)
        };
        match prev {
            Some(p) => self.frames.get_mut(&p).unwrap().next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.frames.get_mut(&n).unwrap().prev = prev,
            None => self.tail = prev,
        }
    }

    /// Append `pid` at the hot end of the chain (must be present in frames).
    fn push_hot(&mut self, pid: PageId) {
        let old_tail = self.tail;
        {
            let f = self.frames.get_mut(&pid).unwrap();
            f.prev = old_tail;
            f.next = None;
        }
        if let Some(t) = old_tail {
            self.frames.get_mut(&t).unwrap().next = Some(pid);
        }
        self.tail = Some(pid);
        if self.head.is_none() {
            self.head = Some(pid);
        }
    }

    fn touch(&mut self, pid: PageId) {
        if self.tail == Some(pid) {
            return;
        }
        self.unlink(pid);
        self.push_hot(pid);
    }

    fn insert(&mut self, pid: PageId, data: Bytes, dirty: bool) {
        if self.frames.contains_key(&pid) {
            let old_len = self.frames[&pid].data.len();
            let f = self.frames.get_mut(&pid).unwrap();
            f.dirty = f.dirty || dirty;
            f.prefetched = false;
            f.data = data;
            let new_len = self.frames[&pid].data.len();
            self.bytes = self.bytes - old_len + new_len;
            self.touch(pid);
        } else {
            self.bytes += data.len();
            self.frames.insert(
                pid,
                Frame {
                    data,
                    dirty,
                    prefetched: false,
                    prev: None,
                    next: None,
                },
            );
            self.push_hot(pid);
        }
    }

    fn remove(&mut self, pid: PageId) {
        if self.frames.contains_key(&pid) {
            self.unlink(pid);
            let f = self.frames.remove(&pid).unwrap();
            self.bytes -= f.data.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiskConfig;

    fn setup(cap: usize) -> (Arc<SimDisk>, BufferPool) {
        let disk = Arc::new(SimDisk::new(DiskConfig::default()));
        let pool = BufferPool::new(disk.clone(), cap);
        (disk, pool)
    }

    #[test]
    fn hit_avoids_device_io() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let p = disk.alloc_page(f).unwrap();
        disk.write_page(p, Bytes::from(vec![7u8; 4096])).unwrap();
        let before = disk.stats();
        pool.get(p).unwrap();
        pool.get(p).unwrap();
        pool.get(p).unwrap();
        let delta = disk.stats().since(&before);
        assert_eq!(delta.page_reads, 1, "only the miss reads the device");
        let c = pool.counters();
        assert_eq!((c.hits, c.misses), (2, 1));
    }

    #[test]
    fn put_defers_write_until_flush() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let p = disk.alloc_page(f).unwrap();
        pool.put(p, Bytes::from(vec![9u8; 4096]));
        assert_eq!(disk.stats().page_writes, 0);
        pool.flush_all();
        assert_eq!(disk.stats().page_writes, 1);
        // Second flush writes nothing: frame is clean.
        pool.flush_all();
        assert_eq!(disk.stats().page_writes, 1);
    }

    #[test]
    fn flush_writes_in_offset_order() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..32).map(|_| disk.alloc_page(f).unwrap()).collect();
        // Dirty them in reverse order; elevator flush should still be
        // sequential (no seeks after reaching offset 0).
        for &p in pages.iter().rev() {
            pool.put(p, Bytes::from(vec![1u8; 4096]));
        }
        disk.reset_head();
        pool.flush_all();
        let s = disk.stats();
        assert_eq!(s.page_writes, 32);
        assert_eq!(s.seeks, 0, "elevator flush must be sequential");
    }

    #[test]
    fn eviction_respects_capacity_and_writes_dirty_victims() {
        let (disk, pool) = setup(4096 * 4);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..8).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            pool.put(p, Bytes::from(vec![3u8; 4096]));
        }
        assert!(pool.cached_bytes() <= 4096 * 4);
        // The four coldest pages must have been written out.
        assert_eq!(disk.stats().page_writes, 4);
        assert_eq!(pool.counters().evictions, 4);
    }

    #[test]
    fn lru_order_is_respected() {
        let (disk, pool) = setup(4096 * 2);
        let f = disk.create_file("t", 4096);
        let a = disk.alloc_page(f).unwrap();
        let b = disk.alloc_page(f).unwrap();
        let c = disk.alloc_page(f).unwrap();
        pool.put(a, Bytes::from(vec![1u8; 4096]));
        pool.put(b, Bytes::from(vec![2u8; 4096]));
        // Touch `a` so `b` becomes coldest.
        pool.get(a).unwrap();
        pool.put(c, Bytes::from(vec![3u8; 4096]));
        // `b` must have been evicted; reading it misses (and, at capacity,
        // evicts the then-coldest frame `a`).
        let before = disk.stats();
        pool.get(b).unwrap();
        assert_eq!(disk.stats().since(&before).page_reads, 1);
        // `c` is still cached.
        let before = disk.stats();
        pool.get(c).unwrap();
        assert_eq!(disk.stats().since(&before).page_reads, 0);
    }

    #[test]
    fn clear_produces_cold_cache() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let p = disk.alloc_page(f).unwrap();
        pool.put(p, Bytes::from(vec![5u8; 4096]));
        pool.clear();
        assert_eq!(pool.cached_bytes(), 0);
        let before = disk.stats();
        let data = pool.get(p).unwrap();
        assert_eq!(data[0], 5, "flushed content must survive");
        assert_eq!(disk.stats().since(&before).page_reads, 1);
    }

    #[test]
    fn sequential_misses_trigger_readahead() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..16).map(|_| disk.alloc_page(f).unwrap()).collect();
        for (i, &p) in pages.iter().enumerate() {
            disk.write_page(p, Bytes::from(vec![i as u8; 4096]))
                .unwrap();
        }
        // First miss: no run yet, no prefetch.
        pool.get(pages[0]).unwrap();
        assert_eq!(pool.counters().readahead, 0);
        // Second adjacent miss: run detected, the continuation streams in.
        pool.get(pages[1]).unwrap();
        let c = pool.counters();
        assert_eq!(c.misses, 2);
        assert_eq!(
            c.readahead,
            disk.config().readahead_pages as u64,
            "run continuation must be prefetched"
        );
        // The prefetched pages are hits that never touch the device again.
        let before = disk.stats();
        for &p in &pages[2..2 + disk.config().readahead_pages] {
            let data = pool.get(p).unwrap();
            assert_eq!(data.len(), 4096);
        }
        assert_eq!(disk.stats().since(&before).page_reads, 0);
        assert_eq!(
            pool.counters().readahead_hits,
            disk.config().readahead_pages as u64
        );
    }

    #[test]
    fn hinted_run_arms_readahead_on_first_miss() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..32).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        let run_len = 20;
        pool.hint_run(AccessHint {
            start_page: pages[0],
            est_run_pages: run_len,
        });
        // One cold miss on the hinted start page prefetches the whole
        // estimated run — no second adjacent miss needed.
        pool.get(pages[0]).unwrap();
        let c = pool.counters();
        assert_eq!(c.misses, 1);
        assert_eq!(c.hinted_runs, 1);
        assert_eq!(
            c.readahead,
            (run_len - 1) as u64,
            "window must be run-length-sized, not the fixed {} pages: {c}",
            disk.config().readahead_pages
        );
        // The whole hinted window is then served without device reads.
        let before = disk.stats();
        for &p in &pages[1..run_len] {
            pool.get(p).unwrap();
        }
        assert_eq!(disk.stats().since(&before).page_reads, 0);
        // Past the estimate the ordinary sequential detector takes over.
        pool.get(pages[run_len]).unwrap();
        let c = pool.counters();
        assert_eq!(c.misses, 2);
        assert!(c.readahead > (run_len - 1) as u64, "run continues: {c}");
    }

    #[test]
    fn hint_on_other_page_does_not_arm() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..8).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        pool.hint_run(AccessHint {
            start_page: pages[4],
            est_run_pages: 4,
        });
        // A miss elsewhere must not consume or act on the hint.
        pool.get(pages[0]).unwrap();
        assert_eq!(pool.counters().readahead, 0);
        assert_eq!(pool.counters().hinted_runs, 0);
        // The hinted page itself then arms.
        pool.get(pages[4]).unwrap();
        assert_eq!(pool.counters().hinted_runs, 1);
        assert_eq!(pool.counters().readahead, 3);
    }

    #[test]
    fn warm_start_page_discharges_hint() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..4).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        pool.get(pages[0]).unwrap(); // warm the head
        pool.hint_run(AccessHint {
            start_page: pages[0],
            est_run_pages: 4,
        });
        pool.get(pages[0]).unwrap(); // hit: hint is moot and dropped
        pool.get(pages[2]).unwrap(); // unrelated miss later
        let c = pool.counters();
        assert_eq!(c.hinted_runs, 0, "a warm head must not count as armed");
        assert_eq!(c.readahead, 0, "{c}");
    }

    #[test]
    fn single_page_hint_prefetches_nothing() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..4).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        pool.hint_run(AccessHint {
            start_page: pages[0],
            est_run_pages: 1,
        });
        pool.get(pages[0]).unwrap();
        let c = pool.counters();
        assert_eq!(c.hinted_runs, 1);
        assert_eq!(c.readahead, 0, "a one-page run has no continuation: {c}");
    }

    #[test]
    fn long_hint_streams_in_capped_batches() {
        let (disk, pool) = setup(4 << 20);
        let f = disk.create_file("t", 4096);
        let n = super::HINTED_BATCH_PAGES * 2 + 10;
        let pages: Vec<_> = (0..n).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        pool.hint_run(AccessHint {
            start_page: pages[0],
            est_run_pages: n,
        });
        for &p in &pages {
            pool.get(p).unwrap();
        }
        let c = pool.counters();
        // First batch is capped; each later boundary miss re-prefetches
        // from the remaining estimate, so the whole run costs ~3 misses.
        assert_eq!(c.misses, 3, "{c}");
        assert_eq!(c.readahead as usize, n - 3, "{c}");
        assert_eq!(c.readahead_hits as usize, n - 3, "{c}");
    }

    #[test]
    fn concurrent_hints_arm_independently() {
        let (disk, pool) = setup(4 << 20);
        let files: Vec<_> = (0..3)
            .map(|i| disk.create_file(&format!("f{i}"), 4096))
            .collect();
        let runs: Vec<Vec<_>> = files
            .iter()
            .map(|&f| {
                let pages: Vec<_> = (0..12).map(|_| disk.alloc_page(f).unwrap()).collect();
                for &p in &pages {
                    disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
                }
                pages
            })
            .collect();
        for run in &runs {
            pool.hint_run(AccessHint {
                start_page: run[0],
                est_run_pages: run.len(),
            });
        }
        // Interleave the three runs round-robin, the way a k-way merge
        // pulls one row per component: each run must still arm on its own
        // first miss and then stream entirely from read-ahead.
        for i in 0..runs[0].len() {
            for run in &runs {
                pool.get(run[i]).unwrap();
            }
        }
        let c = pool.counters();
        assert_eq!(c.hinted_runs, 3, "{c}");
        assert_eq!(c.misses, 3, "one cold miss per run: {c}");
        assert_eq!(c.readahead, 3 * 11, "{c}");
        assert_eq!(c.readahead_hits, 3 * 11, "{c}");
    }

    #[test]
    fn interleaved_unhinted_runs_each_detect() {
        let (disk, pool) = setup(4 << 20);
        let fa = disk.create_file("a", 4096);
        let fb = disk.create_file("b", 4096);
        let a: Vec<_> = (0..12).map(|_| disk.alloc_page(fa).unwrap()).collect();
        let b: Vec<_> = (0..12).map(|_| disk.alloc_page(fb).unwrap()).collect();
        for &p in a.iter().chain(&b) {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        // a0 b0 a1 b1: each file's second miss is adjacent *within its
        // own run*; both runs must arm despite the interleaving.
        pool.get(a[0]).unwrap();
        pool.get(b[0]).unwrap();
        pool.get(a[1]).unwrap();
        pool.get(b[1]).unwrap();
        let c = pool.counters();
        assert_eq!(c.misses, 4);
        assert_eq!(
            c.readahead,
            2 * disk.config().readahead_pages as u64,
            "both interleaved runs must detect: {c}"
        );
    }

    #[test]
    fn clear_hint_is_per_run() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..16).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        pool.hint_run(AccessHint {
            start_page: pages[0],
            est_run_pages: 4,
        });
        pool.hint_run(AccessHint {
            start_page: pages[8],
            est_run_pages: 4,
        });
        pool.clear_hint(pages[8]);
        pool.get(pages[8]).unwrap();
        let c = pool.counters();
        assert_eq!(c.hinted_runs, 0, "cleared hint must not arm: {c}");
        assert_eq!(c.readahead, 0, "{c}");
        // The sibling hint is untouched and still arms.
        pool.get(pages[0]).unwrap();
        let c = pool.counters();
        assert_eq!(c.hinted_runs, 1, "{c}");
        assert_eq!(c.readahead, 3, "{c}");
    }

    #[test]
    fn random_misses_do_not_prefetch() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..8).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        // Backwards access never looks sequential.
        for &p in pages.iter().rev() {
            pool.get(p).unwrap();
        }
        let c = pool.counters();
        assert_eq!(c.readahead, 0);
        assert_eq!(c.misses, 8);
    }

    #[test]
    fn readahead_stops_at_file_boundary() {
        let (disk, pool) = setup(1 << 20);
        let f1 = disk.create_file("a", 4096);
        let f2 = disk.create_file("b", 4096);
        let a0 = disk.alloc_page(f1).unwrap();
        let a1 = disk.alloc_page(f1).unwrap();
        let _b0 = disk.alloc_page(f2).unwrap(); // physically next, other file
        pool.get(a0).unwrap();
        pool.get(a1).unwrap();
        assert_eq!(pool.counters().readahead, 0, "run ends where the file does");
    }

    #[test]
    fn eviction_flush_failure_is_counted() {
        let (disk, pool) = setup(4096 * 2);
        let f = disk.create_file("t", 4096);
        // Allocate everything up front so the free list never recycles
        // the doomed slot into a later page.
        let doomed = disk.alloc_page(f).unwrap();
        let p1 = disk.alloc_page(f).unwrap();
        let p2 = disk.alloc_page(f).unwrap();
        pool.put(doomed, Bytes::from(vec![1u8; 4096]));
        // Free the page underneath the pool, then force it out.
        disk.free_page(doomed).unwrap();
        pool.put(p1, Bytes::from(vec![2u8; 4096]));
        pool.put(p2, Bytes::from(vec![3u8; 4096]));
        assert_eq!(
            pool.counters().flush_errors,
            1,
            "dropped eviction flush must be recorded: {}",
            pool.counters()
        );
    }

    #[test]
    fn store_free_page_discards_pooled_frame() {
        // Regression for the freed-underneath wart: freeing through
        // `Store::free_page` must invalidate the pooled frame, so a
        // legitimate free can never resurface as a spurious flush error
        // when the dead frame is later evicted.
        let disk = Arc::new(SimDisk::new(DiskConfig::default()));
        let store = crate::Store::new(disk.clone(), 4096 * 2);
        let f = disk.create_file("t", 4096);
        let doomed = disk.alloc_page(f).unwrap();
        let p1 = disk.alloc_page(f).unwrap();
        let p2 = disk.alloc_page(f).unwrap();
        store.pool.put(doomed, Bytes::from(vec![1u8; 4096]));
        store.free_page(doomed).unwrap();
        // Force evictions past where the doomed frame sat.
        store.pool.put(p1, Bytes::from(vec![2u8; 4096]));
        store.pool.put(p2, Bytes::from(vec![3u8; 4096]));
        let c = store.pool.counters();
        assert_eq!(c.flush_errors, 0, "legitimate free must not count: {c}");
        assert!(store.pool.degraded().is_none());
    }

    #[test]
    fn transient_writeback_faults_are_retried_not_fatal() {
        use crate::fault::FaultPlan;
        let (disk, pool) = setup(4096 * 2);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..8).map(|_| disk.alloc_page(f).unwrap()).collect();
        disk.set_fault_plan(FaultPlan::transient(0.0, 0.4, 7));
        for &p in &pages {
            pool.put(p, Bytes::from(vec![1u8; 4096]));
        }
        pool.flush_all();
        let c = pool.counters();
        assert!(c.flush_retries > 0, "faults must have been retried: {c}");
        assert_eq!(c.flush_errors, 0, "retries must absorb transients: {c}");
        assert!(pool.degraded().is_none());
        disk.clear_fault_plan();
        // Every page must actually have reached the device.
        for &p in &pages {
            assert_eq!(disk.read_page(p).unwrap()[0], 1);
        }
    }

    #[test]
    fn persistent_writeback_failure_poisons_the_pool() {
        use crate::fault::FaultPlan;
        let (disk, pool) = setup(4096 * 2);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..4).map(|_| disk.alloc_page(f).unwrap()).collect();
        pool.put(pages[0], Bytes::from(vec![1u8; 4096]));
        disk.set_fault_plan(FaultPlan::kill_at(0));
        // Evicting the dirty frame now hits a dead device.
        pool.put(pages[1], Bytes::from(vec![2u8; 4096]));
        pool.put(pages[2], Bytes::from(vec![3u8; 4096]));
        let c = pool.counters();
        assert!(c.flush_errors > 0, "{c}");
        let reason = pool.degraded().expect("pool must be poisoned");
        assert!(reason.contains("crashed"), "reason: {reason}");
        // Reboot lifts the poisoning.
        disk.clear_fault_plan();
        pool.drop_all();
        assert!(pool.degraded().is_none());
    }

    #[test]
    fn discard_drops_without_write() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let p = disk.alloc_page(f).unwrap();
        pool.put(p, Bytes::from(vec![5u8; 4096]));
        pool.discard(p);
        pool.flush_all();
        assert_eq!(disk.stats().page_writes, 0);
    }

    #[test]
    fn suppression_blocks_two_miss_arming() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..16).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        {
            let _guard = pool.attributed(QueryId::next()).suppress_run_detection();
            // Two adjacent misses would normally arm read-ahead; under
            // suppression they must not.
            pool.get(pages[0]).unwrap();
            pool.get(pages[1]).unwrap();
            pool.get(pages[2]).unwrap();
            assert_eq!(pool.counters().readahead, 0, "{}", pool.counters());
        }
        // Guard dropped: the detector works again for the next query.
        pool.clear();
        pool.get(pages[0]).unwrap();
        pool.get(pages[1]).unwrap();
        assert_eq!(
            pool.counters().readahead,
            disk.config().readahead_pages as u64
        );
    }

    #[test]
    fn suppression_still_honors_hints() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..16).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        let _guard = pool.attributed(QueryId::next()).suppress_run_detection();
        pool.hint_run(AccessHint {
            start_page: pages[0],
            est_run_pages: 8,
        });
        pool.get(pages[0]).unwrap();
        let c = pool.counters();
        assert_eq!(c.hinted_runs, 1, "{c}");
        assert_eq!(c.readahead, 7, "hint must stream despite suppression: {c}");
    }

    #[test]
    fn wasted_prefetch_is_counted_on_eviction_and_clear() {
        let (disk, pool) = setup(4096 * 4);
        let f = disk.create_file("t", 4096);
        let pages: Vec<_> = (0..16).map(|_| disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        // Arm a hinted run larger than the pool: prefetched frames evict
        // each other before any demand get touches them.
        pool.hint_run(AccessHint {
            start_page: pages[0],
            est_run_pages: 12,
        });
        pool.get(pages[0]).unwrap();
        let c = pool.counters();
        assert!(c.readahead > 0, "{c}");
        assert!(
            c.readahead_wasted > 0,
            "evicted-unread prefetch must count: {c}"
        );
        // Whatever prefetched frames remain cached die unread at clear().
        let before = pool.counters();
        pool.clear();
        let after = pool.counters();
        assert_eq!(
            after.readahead - after.readahead_wasted,
            before.readahead_hits,
            "every prefetched page is either a hit or wasted: {after}"
        );
    }

    #[test]
    fn attribution_isolates_two_queries_on_one_pool() {
        let (disk, pool) = setup(1 << 20);
        let fa = disk.create_file("a", 4096);
        let fb = disk.create_file("b", 4096);
        let a: Vec<_> = (0..4).map(|_| disk.alloc_page(fa).unwrap()).collect();
        let b: Vec<_> = (0..4).map(|_| disk.alloc_page(fb).unwrap()).collect();
        for &p in a.iter().chain(&b) {
            disk.write_page(p, Bytes::from(vec![1u8; 4096])).unwrap();
        }
        disk.close_all_files();
        disk.reset_head();
        let total_before = pool.device_stats();

        let qa = QueryId::next();
        let qb = QueryId::next();
        // Interleave the two "queries" statement by statement, the way
        // two sessions would race on one store.
        for i in 0..a.len() {
            {
                let _g = pool.attributed(qa);
                pool.get(a[i]).unwrap();
            }
            {
                let _g = pool.attributed(qb);
                pool.get(b[i]).unwrap();
            }
        }

        let sa = pool.take_attributed(qa);
        let sb = pool.take_attributed(qb);
        let total = pool.device_stats().since(&total_before);
        assert_eq!(sa.page_reads, 4);
        assert_eq!(sb.page_reads, 4);
        assert_eq!(sa.file_opens, 1, "each query pays only its own open");
        assert_eq!(sb.file_opens, 1);
        assert!(sa.total_ms() > 0.0 && sb.total_ms() > 0.0);
        // Sum of attributed time == store-wide delta: nothing leaks.
        assert!(
            (sa.total_ms() + sb.total_ms() - total.total_ms()).abs() < 1e-9,
            "attributed {} + {} != store delta {}",
            sa.total_ms(),
            sb.total_ms(),
            total.total_ms()
        );
        // Slots were consumed.
        assert_eq!(pool.take_attributed(qa).page_reads, 0);
    }

    #[test]
    fn nested_guards_attribute_to_the_innermost_query() {
        let (disk, pool) = setup(1 << 20);
        let f = disk.create_file("t", 4096);
        let p0 = disk.alloc_page(f).unwrap();
        let p1 = disk.alloc_page(f).unwrap();
        disk.write_page(p0, Bytes::from(vec![1u8; 4096])).unwrap();
        disk.write_page(p1, Bytes::from(vec![1u8; 4096])).unwrap();
        pool.clear();
        let outer = QueryId::next();
        let inner = QueryId::next();
        let _og = pool.attributed(outer);
        pool.get(p0).unwrap();
        {
            let _ig = pool.attributed(inner);
            pool.get(p1).unwrap();
        }
        assert_eq!(pool.take_attributed(outer).page_reads, 1);
        assert_eq!(pool.take_attributed(inner).page_reads, 1);
    }
}
