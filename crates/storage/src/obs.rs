//! Per-query I/O attribution.
//!
//! The simulated device keeps one store-wide clock; queries racing on the
//! same [`Store`](crate::Store) therefore inflate each other's
//! before/after snapshots. This module fixes the attribution side: a
//! [`QueryId`] names one logical query, and a scoped
//! [`BufferPool::attributed`](crate::BufferPool::attributed) guard pushes
//! that id onto a thread-local stack while the query runs. Every charge
//! the device takes while the stack is non-empty is *also* accrued to a
//! per-query [`IoStats`](crate::IoStats) slot, so each query observes
//! exactly the device time its own accesses caused — the sum of all
//! attributed slots equals the store-wide delta when every access runs
//! under a guard.
//!
//! The stack is thread-local: two sessions racing on different threads
//! attribute correctly without any coordination, and nested guards (a
//! query executing inside an outer instrumentation scope) attribute to
//! the innermost id.
//!
//! The flip side of thread-locality: a guard pinned on one thread does
//! **not** cover I/O issued from another. A query that fans work out to
//! worker threads (the sharded scatter-gather runs one worker per
//! shard) must re-pin a guard — same [`QueryId`], that shard's pool —
//! on *each* worker; the per-query slot in the pool is shared, so the
//! windows still land on one id and
//! [`take_attributed`](crate::BufferPool::take_attributed) may be
//! called from any thread afterwards.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies one logical query for I/O attribution and tracing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

static NEXT_QUERY_ID: AtomicU64 = AtomicU64::new(1);

impl QueryId {
    /// A fresh process-unique id (monotonic, never reused).
    pub fn next() -> QueryId {
        QueryId(NEXT_QUERY_ID.fetch_add(1, Ordering::Relaxed))
    }
}

thread_local! {
    static ATTRIBUTION: RefCell<Vec<QueryId>> = const { RefCell::new(Vec::new()) };
}

/// The query currently attributed on this thread (innermost guard).
pub(crate) fn current_query() -> Option<QueryId> {
    ATTRIBUTION.with(|s| s.borrow().last().copied())
}

pub(crate) fn push_query(qid: QueryId) {
    ATTRIBUTION.with(|s| s.borrow_mut().push(qid));
}

pub(crate) fn pop_query() {
    ATTRIBUTION.with(|s| {
        s.borrow_mut().pop();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotonic() {
        let a = QueryId::next();
        let b = QueryId::next();
        assert!(b.0 > a.0);
    }

    #[test]
    fn stack_nests_innermost_wins() {
        assert_eq!(current_query(), None);
        let a = QueryId::next();
        let b = QueryId::next();
        push_query(a);
        assert_eq!(current_query(), Some(a));
        push_query(b);
        assert_eq!(current_query(), Some(b));
        pop_query();
        assert_eq!(current_query(), Some(a));
        pop_query();
        assert_eq!(current_query(), None);
    }
}
