//! Order-preserving byte encodings for composite index keys.
//!
//! Every index in this workspace compares keys with plain `memcmp`
//! (`&[u8]` ordering), so key components must be encoded such that the byte
//! order equals the desired logical order:
//!
//! * unsigned integers → big-endian;
//! * signed integers → sign bit flipped, big-endian;
//! * floats → IEEE total-order trick (flip all bits of negatives, flip the
//!   sign bit of positives);
//! * probabilities in **descending** order → quantized to a `u32` and
//!   subtracted from `u32::MAX`, so a forward scan sees high-probability
//!   entries first (the UPI's `{value ASC, probability DESC}` ordering,
//!   Table 2 of the paper);
//! * strings → 0x00-escaped and 0x00 0x00 terminated so that component
//!   boundaries cannot leak across comparisons.
//!
//! [`KeyBuf`] composes components; [`KeyReader`] decodes them back.

/// Quantization scale for probabilities (fits in a `u32`).
const PROB_SCALE: f64 = u32::MAX as f64;

/// Encode a `u16` preserving order.
#[inline]
pub fn enc_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Encode a `u32` preserving order.
#[inline]
pub fn enc_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Encode a `u64` preserving order.
#[inline]
pub fn enc_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Encode an `i64` preserving order (sign bit flipped).
#[inline]
pub fn enc_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&((v as u64) ^ (1u64 << 63)).to_be_bytes());
}

/// Encode an `f64` preserving order (total order over non-NaN values).
#[inline]
pub fn enc_f64(buf: &mut Vec<u8>, v: f64) {
    let bits = v.to_bits();
    let enc = if bits & (1 << 63) != 0 {
        !bits
    } else {
        bits | (1 << 63)
    };
    buf.extend_from_slice(&enc.to_be_bytes());
}

/// Quantize a probability in `[0, 1]` to the `u32` grid used by the index.
#[inline]
pub fn quantize_prob(p: f64) -> u32 {
    (p.clamp(0.0, 1.0) * PROB_SCALE).round() as u32
}

/// Inverse of [`quantize_prob`].
#[inline]
pub fn dequantize_prob(q: u32) -> f64 {
    q as f64 / PROB_SCALE
}

/// Encode a probability so byte order is **descending** probability.
#[inline]
pub fn enc_prob_desc(buf: &mut Vec<u8>, p: f64) {
    enc_u32(buf, u32::MAX - quantize_prob(p));
}

/// Encode a string component: 0x00 bytes are escaped as `00 FF`, and the
/// component is terminated with `00 00`. Preserves lexicographic order and
/// guarantees a shorter string sorts before its extensions.
pub fn enc_str(buf: &mut Vec<u8>, s: &str) {
    for &b in s.as_bytes() {
        if b == 0 {
            buf.push(0);
            buf.push(0xFF);
        } else {
            buf.push(b);
        }
    }
    buf.push(0);
    buf.push(0);
}

/// Composite key builder.
///
/// ```
/// use upi_storage::codec::KeyBuf;
/// let mut hi = KeyBuf::new();
/// hi.u64(42).prob_desc(0.9).u64(7);
/// let mut lo = KeyBuf::new();
/// lo.u64(42).prob_desc(0.2).u64(7);
/// // Same value, higher probability sorts first:
/// assert!(hi.as_bytes() < lo.as_bytes());
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyBuf {
    bytes: Vec<u8>,
}

impl KeyBuf {
    /// Empty key.
    pub fn new() -> Self {
        KeyBuf { bytes: Vec::new() }
    }

    /// Append a `u16` component.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        enc_u16(&mut self.bytes, v);
        self
    }

    /// Append a `u32` component.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        enc_u32(&mut self.bytes, v);
        self
    }

    /// Append a `u64` component.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        enc_u64(&mut self.bytes, v);
        self
    }

    /// Append an `i64` component.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        enc_i64(&mut self.bytes, v);
        self
    }

    /// Append an `f64` component.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        enc_f64(&mut self.bytes, v);
        self
    }

    /// Append a probability in descending order.
    pub fn prob_desc(&mut self, p: f64) -> &mut Self {
        enc_prob_desc(&mut self.bytes, p);
        self
    }

    /// Append a string component.
    pub fn str(&mut self, s: &str) -> &mut Self {
        enc_str(&mut self.bytes, s);
        self
    }

    /// Raw encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume into the raw encoding.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Length of the encoding so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if no component has been appended.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Sequential decoder for composite keys produced by [`KeyBuf`].
#[derive(Debug, Clone)]
pub struct KeyReader<'a> {
    rest: &'a [u8],
}

impl<'a> KeyReader<'a> {
    /// Start decoding `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        KeyReader { rest: bytes }
    }

    fn take(&mut self, n: usize) -> &'a [u8] {
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        head
    }

    /// Decode a `u16` component.
    pub fn u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take(2).try_into().unwrap())
    }

    /// Decode a `u32` component.
    pub fn u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take(4).try_into().unwrap())
    }

    /// Decode a `u64` component.
    pub fn u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take(8).try_into().unwrap())
    }

    /// Decode an `i64` component.
    pub fn i64(&mut self) -> i64 {
        (self.u64() ^ (1u64 << 63)) as i64
    }

    /// Decode an `f64` component.
    pub fn f64(&mut self) -> f64 {
        let enc = u64::from_be_bytes(self.take(8).try_into().unwrap());
        let bits = if enc & (1 << 63) != 0 {
            enc & !(1 << 63)
        } else {
            !enc
        };
        f64::from_bits(bits)
    }

    /// Decode a probability stored in descending order.
    pub fn prob_desc(&mut self) -> f64 {
        dequantize_prob(u32::MAX - self.u32())
    }

    /// Decode a string component without allocating when possible.
    ///
    /// Strings that contain no escaped `0x00` byte — every string in
    /// practice; NULs only appear in adversarial keys — decode as a
    /// borrowed slice of the key, so hot run scans stop paying one heap
    /// allocation per string field. Escaped strings fall back to the
    /// owned unescaping path.
    pub fn str_ref(&mut self) -> std::borrow::Cow<'a, str> {
        // Fast path: scan for the `00 00` terminator; any `00 FF` escape
        // forces the owned path.
        let mut i = 0;
        loop {
            if self.rest[i] != 0 {
                i += 1;
                continue;
            }
            match self.rest[i + 1] {
                0 => {
                    // Unescaped component: borrow it wholesale.
                    let s = std::str::from_utf8(&self.rest[..i])
                        .expect("encoded strings are valid utf-8");
                    self.rest = &self.rest[i + 2..];
                    return std::borrow::Cow::Borrowed(s);
                }
                0xFF => break, // escaped NUL: unescape into an owned buffer
                bad => unreachable!("invalid string escape 00 {bad:02X}"),
            }
        }
        let mut out = Vec::new();
        let mut i = 0;
        loop {
            let b = self.rest[i];
            if b == 0 {
                let nxt = self.rest[i + 1];
                if nxt == 0 {
                    i += 2;
                    break;
                }
                debug_assert_eq!(nxt, 0xFF, "invalid string escape");
                out.push(0);
                i += 2;
            } else {
                out.push(b);
                i += 1;
            }
        }
        self.rest = &self.rest[i..];
        std::borrow::Cow::Owned(String::from_utf8(out).expect("encoded strings are valid utf-8"))
    }

    /// Decode a string component into an owned `String` (thin wrapper
    /// over [`str_ref`](Self::str_ref)).
    pub fn str(&mut self) -> String {
        self.str_ref().into_owned()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> &'a [u8] {
        self.rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn u64_roundtrip_and_order() {
        for &(a, b) in &[(0u64, 1u64), (5, 500), (u64::MAX - 1, u64::MAX)] {
            let mut ka = KeyBuf::new();
            ka.u64(a);
            let mut kb = KeyBuf::new();
            kb.u64(b);
            assert!(ka.as_bytes() < kb.as_bytes());
            assert_eq!(KeyReader::new(ka.as_bytes()).u64(), a);
        }
    }

    #[test]
    fn prob_desc_reverses_order() {
        let mut hi = KeyBuf::new();
        hi.prob_desc(0.95);
        let mut lo = KeyBuf::new();
        lo.prob_desc(0.05);
        assert!(hi.as_bytes() < lo.as_bytes(), "high prob sorts first");
        let p = KeyReader::new(hi.as_bytes()).prob_desc();
        assert!((p - 0.95).abs() < 1e-6);
    }

    #[test]
    fn composite_orders_lexicographically() {
        // (value ASC, prob DESC, tid ASC) — Table 2's ordering.
        let key = |v: u64, p: f64, t: u64| {
            let mut k = KeyBuf::new();
            k.u64(v).prob_desc(p).u64(t);
            k.into_bytes()
        };
        let brown_alice = key(1, 0.72, 10);
        let brown_carol = key(1, 0.48, 30);
        let mit_bob = key(2, 0.95, 20);
        let mit_alice = key(2, 0.18, 10);
        let mut v = vec![
            mit_alice.clone(),
            brown_carol.clone(),
            mit_bob.clone(),
            brown_alice.clone(),
        ];
        v.sort();
        assert_eq!(v, vec![brown_alice, brown_carol, mit_bob, mit_alice]);
    }

    #[test]
    fn str_with_nul_and_prefix_order() {
        let mut a = KeyBuf::new();
        a.str("ab");
        let mut b = KeyBuf::new();
        b.str("ab\0c");
        let mut c = KeyBuf::new();
        c.str("abc");
        assert!(a.as_bytes() < b.as_bytes());
        assert!(b.as_bytes() < c.as_bytes());
        assert_eq!(KeyReader::new(b.as_bytes()).str(), "ab\0c");
    }

    #[test]
    fn str_ref_borrows_unless_escaped() {
        let mut k = KeyBuf::new();
        k.str("plain");
        let bytes = k.into_bytes();
        let mut r = KeyReader::new(&bytes);
        match r.str_ref() {
            std::borrow::Cow::Borrowed(s) => assert_eq!(s, "plain"),
            other => panic!("unescaped strings must borrow, got {other:?}"),
        }
        assert!(r.remaining().is_empty());

        let mut k = KeyBuf::new();
        k.str("nul\0here").u64(7);
        let bytes = k.into_bytes();
        let mut r = KeyReader::new(&bytes);
        match r.str_ref() {
            std::borrow::Cow::Owned(s) => assert_eq!(s, "nul\0here"),
            other => panic!("escaped strings must unescape owned, got {other:?}"),
        }
        assert_eq!(r.u64(), 7);
    }

    #[test]
    fn mixed_composite_roundtrip() {
        let mut k = KeyBuf::new();
        k.str("mit").prob_desc(0.5).u64(99).i64(-4).f64(-2.25);
        let mut r = KeyReader::new(k.as_bytes());
        assert_eq!(r.str(), "mit");
        assert!((r.prob_desc() - 0.5).abs() < 1e-6);
        assert_eq!(r.u64(), 99);
        assert_eq!(r.i64(), -4);
        assert_eq!(r.f64(), -2.25);
        assert!(r.remaining().is_empty());
    }

    proptest! {
        #[test]
        fn prop_u64_order(a: u64, b: u64) {
            let mut ka = KeyBuf::new(); ka.u64(a);
            let mut kb = KeyBuf::new(); kb.u64(b);
            prop_assert_eq!(a.cmp(&b), ka.as_bytes().cmp(kb.as_bytes()));
        }

        #[test]
        fn prop_i64_order(a: i64, b: i64) {
            let mut ka = KeyBuf::new(); ka.i64(a);
            let mut kb = KeyBuf::new(); kb.i64(b);
            prop_assert_eq!(a.cmp(&b), ka.as_bytes().cmp(kb.as_bytes()));
        }

        #[test]
        fn prop_f64_order(a in -1e100f64..1e100, b in -1e100f64..1e100) {
            let mut ka = KeyBuf::new(); ka.f64(a);
            let mut kb = KeyBuf::new(); kb.f64(b);
            prop_assert_eq!(a.partial_cmp(&b).unwrap(), ka.as_bytes().cmp(kb.as_bytes()));
        }

        #[test]
        fn prop_prob_desc_reverses(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let mut ka = KeyBuf::new(); ka.prob_desc(a);
            let mut kb = KeyBuf::new(); kb.prob_desc(b);
            // Quantization can merge near-equal values; only check strict cases.
            if quantize_prob(a) != quantize_prob(b) {
                prop_assert_eq!(
                    b.partial_cmp(&a).unwrap(),
                    ka.as_bytes().cmp(kb.as_bytes())
                );
            }
        }

        #[test]
        fn prop_str_roundtrip(s in "\\PC*") {
            let mut k = KeyBuf::new();
            k.str(&s);
            prop_assert_eq!(KeyReader::new(k.as_bytes()).str(), s);
        }

        #[test]
        fn prop_str_order(a in "[a-c\\x00]{0,6}", b in "[a-c\\x00]{0,6}") {
            let mut ka = KeyBuf::new(); ka.str(&a);
            let mut kb = KeyBuf::new(); kb.str(&b);
            prop_assert_eq!(
                a.as_bytes().cmp(b.as_bytes()),
                ka.as_bytes().cmp(kb.as_bytes())
            );
        }

        #[test]
        fn prop_prob_quantize_roundtrip(p in 0.0f64..=1.0) {
            let q = quantize_prob(p);
            prop_assert!((dequantize_prob(q) - p).abs() < 1e-9);
        }
    }
}
