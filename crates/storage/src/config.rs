//! Disk cost-model parameters (Table 6 of the paper).

use serde::{Deserialize, Serialize};

/// Parameters of the simulated disk.
///
/// Defaults reproduce Table 6 of the paper ("Parameters for cost models"):
///
/// | parameter | paper value |
/// |---|---|
/// | `T_seek` (random seek)      | 10 ms |
/// | `T_read` (sequential read)  | 20 ms/MB |
/// | `T_write` (sequential write)| 50 ms/MB |
/// | `Cost_init` (open a DB file)| 100 ms |
///
/// Two parameters extend Table 6 so that *short* head movements behave like
/// a real drive rather than like a constant-cost teleport:
///
/// * [`seek_floor_ms`](DiskConfig::seek_floor_ms) — the minimum cost of any
///   discontiguous head move (head settle + rotational latency). Seek cost
///   grows from the floor to `seek_ms` with the square root of the distance,
///   the classical seek-curve approximation.
/// * A forward move is never charged more than "reading through" the skipped
///   bytes at the sequential rate. This mirrors what happens during a
///   bitmap-style heap scan that skips a few pages: the platter keeps
///   spinning under the head, so skipping costs no more than reading. This
///   is the physical mechanism behind the pointer *saturation* the paper
///   models with a sigmoid in §6.3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DiskConfig {
    /// Full random seek cost in milliseconds (`T_seek`).
    pub seek_ms: f64,
    /// Minimum cost of a discontiguous move (settle + rotation), ms.
    pub seek_floor_ms: f64,
    /// Sequential read rate, ms per MiB (`T_read`).
    pub read_ms_per_mb: f64,
    /// Sequential write rate, ms per MiB (`T_write`).
    pub write_ms_per_mb: f64,
    /// Cost to open a database file, ms (`Cost_init`).
    pub init_ms: f64,
    /// Seek-distance normalization: a move of this many bytes (or more)
    /// costs the full `seek_ms`. Roughly the platter span of the paper's
    /// experimental database.
    pub stroke_bytes: u64,
    /// Sequential read-ahead depth of the buffer pool, in pages.
    ///
    /// When the pool observes **run-style access** — two consecutive
    /// cache misses at physically adjacent offsets of the same file, the
    /// signature of a UPI heap run or any other clustered scan — it
    /// prefetches up to this many physically contiguous pages of the same
    /// file in one batch while the head is already positioned there (one
    /// potential seek + one contiguous transfer, charged through the
    /// normal disk model; in practice the head is parked right at the run
    /// so the move is free). The payoff is that interleaved access to
    /// *other* files (cutoff pointer chases, secondary-index descents)
    /// no longer forces a seek back to the run for every leaf hop.
    ///
    /// `0` disables read-ahead. The default (8 pages, 64 KiB at the 8 KiB
    /// experimental page size) mirrors a conservative OS readahead
    /// window: large enough to cover a leaf-chain hop pattern, small
    /// enough that an early-terminating top-k run over-reads at most 8
    /// pages.
    pub readahead_pages: usize,
    /// Cost of one `fsync`-equivalent durability barrier, ms. The WAL
    /// charges this once per group-commit flush (on top of the ordinary
    /// write-transfer cost of the log pages), so the §6 device model
    /// prices commit latency: the default is half a revolution of a
    /// 10k RPM spindle — the platter must come around for the drive to
    /// acknowledge the forced write.
    pub fsync_ms: f64,
    /// Group-commit batch size: WAL appends are buffered in memory and
    /// flushed to the device — one contiguous write plus one
    /// [`fsync_ms`](DiskConfig::fsync_ms) barrier — every this many
    /// records (or earlier, on an explicit sync/checkpoint). `1` degrades
    /// to per-operation commit; larger values amortize the barrier across
    /// the batch at the cost of a longer window of acknowledged-but-
    /// volatile operations.
    pub wal_group_ops: usize,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig {
            seek_ms: 10.0,
            // Settle + average rotational latency of a 10k RPM spindle
            // (half a revolution = 3 ms): even the shortest true seek
            // cannot beat the platter coming around.
            seek_floor_ms: 4.0,
            read_ms_per_mb: 20.0,
            write_ms_per_mb: 50.0,
            init_ms: 100.0,
            stroke_bytes: 10 << 30, // 10 GiB, Table 6's S_table
            readahead_pages: 8,
            // Same physics as `seek_floor_ms`: the barrier completes when
            // the platter comes around (half a 10k RPM revolution).
            fsync_ms: 3.0,
            wal_group_ops: 32,
        }
    }
}

impl DiskConfig {
    /// Milliseconds to sequentially read `bytes`.
    #[inline]
    pub fn read_cost_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * self.read_ms_per_mb / (1024.0 * 1024.0)
    }

    /// Milliseconds to sequentially write `bytes`.
    #[inline]
    pub fn write_cost_ms(&self, bytes: u64) -> f64 {
        bytes as f64 * self.write_ms_per_mb / (1024.0 * 1024.0)
    }

    /// Cost of moving the head from `from` to `to` (exclusive of the
    /// subsequent transfer).
    ///
    /// * zero-distance moves are free (the definition of sequential access);
    /// * forward moves are charged `min(seek curve, read-through)`;
    /// * backward moves are charged the seek curve (the platter cannot spin
    ///   backwards).
    pub fn move_cost_ms(&self, from: u64, to: u64) -> f64 {
        if from == to {
            return 0.0;
        }
        let dist = from.abs_diff(to);
        let frac = (dist as f64 / self.stroke_bytes as f64).min(1.0);
        let curve = self.seek_floor_ms + (self.seek_ms - self.seek_floor_ms) * frac.sqrt();
        if to > from {
            curve.min(self.read_cost_ms(dist))
        } else {
            curve
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table6() {
        let c = DiskConfig::default();
        assert_eq!(c.seek_ms, 10.0);
        assert_eq!(c.read_ms_per_mb, 20.0);
        assert_eq!(c.write_ms_per_mb, 50.0);
        assert_eq!(c.init_ms, 100.0);
    }

    #[test]
    fn sequential_moves_are_free() {
        let c = DiskConfig::default();
        assert_eq!(c.move_cost_ms(4096, 4096), 0.0);
    }

    #[test]
    fn tiny_forward_hops_cost_read_through() {
        let c = DiskConfig::default();
        // Skipping 8 KiB forward should cost the same as reading 8 KiB,
        // which is far below the seek floor.
        let hop = c.move_cost_ms(0, 8192);
        assert!((hop - c.read_cost_ms(8192)).abs() < 1e-9);
        assert!(hop < c.seek_floor_ms);
    }

    #[test]
    fn long_moves_cost_a_full_seek() {
        let c = DiskConfig::default();
        let far = c.stroke_bytes;
        assert!((c.move_cost_ms(0, far) - c.seek_ms).abs() < 1e-9);
        // Backward long moves too.
        assert!((c.move_cost_ms(far, 0) - c.seek_ms).abs() < 1e-9);
    }

    #[test]
    fn backward_moves_never_use_read_through() {
        let c = DiskConfig::default();
        let back = c.move_cost_ms(8192, 0);
        assert!(back >= c.seek_floor_ms);
    }

    #[test]
    fn seek_curve_is_monotone_in_distance() {
        let c = DiskConfig::default();
        let mut prev = 0.0;
        for exp in 10..34 {
            let d = 1u64 << exp;
            let cost = c.move_cost_ms(d, 0); // backward: pure curve
            assert!(cost >= prev, "seek curve must be monotone");
            prev = cost;
        }
    }

    #[test]
    fn transfer_costs_scale_linearly() {
        let c = DiskConfig::default();
        assert!((c.read_cost_ms(1 << 20) - 20.0).abs() < 1e-9);
        assert!((c.write_cost_ms(1 << 20) - 50.0).abs() < 1e-9);
        assert!((c.read_cost_ms(2 << 20) - 40.0).abs() < 1e-9);
    }
}
