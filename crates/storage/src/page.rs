//! Page identifiers and small helpers for page buffers.

/// Physical page identifier, global across all files on a [`SimDisk`].
///
/// Page ids are dense indices into the device's page table; the *physical
/// byte offset* of a page is a separate property (pages of different files
/// interleave on the platter in allocation order, which is exactly how
/// fragmentation arises).
///
/// [`SimDisk`]: crate::disk::SimDisk
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// Sentinel for "no page" (e.g. the last leaf's `next` pointer).
pub const INVALID_PAGE: PageId = PageId(u64::MAX);

impl PageId {
    /// True if this id is the [`INVALID_PAGE`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != INVALID_PAGE
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_valid() {
            write!(f, "P{}", self.0)
        } else {
            write!(f, "P-nil")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_page_is_not_valid() {
        assert!(!INVALID_PAGE.is_valid());
        assert!(PageId(0).is_valid());
        assert!(PageId(12345).is_valid());
    }

    #[test]
    fn display_forms() {
        assert_eq!(PageId(7).to_string(), "P7");
        assert_eq!(INVALID_PAGE.to_string(), "P-nil");
    }
}
