//! Logical files on the simulated device.

use crate::page::PageId;

/// Identifier of a logical file (one B+Tree, heap, or index lives in one file).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Book-keeping for one logical file.
///
/// A file is a set of pages with a fixed page size. Pages are *physically*
/// placed by the device's global bump allocator, so pages of concurrently
/// growing files interleave — the same way BerkeleyDB files share one
/// platter. Freed pages go on a per-file free list and are reused first,
/// which plants later insertions at scattered physical locations (the
/// fragmentation mechanism of §4.1).
#[derive(Debug, Clone)]
pub(crate) struct FileMeta {
    /// Human-readable name, for debugging and stats dumps.
    pub name: String,
    /// Fixed page size in bytes for every page of this file.
    pub page_size: u32,
    /// Whether the file is currently "open" (first touch after a cold start
    /// charges `Cost_init`).
    pub open: bool,
    /// Pages currently allocated to the file.
    pub pages: Vec<PageId>,
    /// Freed pages available for reuse (LIFO).
    pub free_list: Vec<PageId>,
}

impl FileMeta {
    pub(crate) fn new(name: &str, page_size: u32) -> Self {
        FileMeta {
            name: name.to_string(),
            page_size,
            open: false,
            pages: Vec::new(),
            free_list: Vec::new(),
        }
    }

    /// Live (allocated, non-freed) page count.
    pub(crate) fn live_pages(&self) -> usize {
        self.pages.len() - self.free_list.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_pages_excludes_freed() {
        let mut m = FileMeta::new("t", 4096);
        m.pages.push(PageId(0));
        m.pages.push(PageId(1));
        m.free_list.push(PageId(0));
        assert_eq!(m.live_pages(), 1);
    }
}
