//! The simulated disk device.

use bytes::Bytes;
use parking_lot::Mutex;

use crate::config::DiskConfig;
use crate::error::{Result, StorageError};
use crate::fault::{FaultCounters, FaultOutcome, FaultPlan, FaultState};
use crate::file::{FileId, FileMeta};
use crate::obs::{self, QueryId};
use crate::page::PageId;
use crate::stats::IoStats;

/// Upper bound on concurrently tracked per-query attribution slots
/// (oldest evicted): bounds memory for callers that never collect their
/// attributed stats.
const MAX_ATTRIBUTED_QUERIES: usize = 64;

/// A byte-addressed simulated disk.
///
/// The device stores page contents in memory but charges a simulated clock
/// for every transfer according to [`DiskConfig`]:
///
/// * moving the head costs [`DiskConfig::move_cost_ms`] (zero when the next
///   access starts exactly where the previous one ended);
/// * transfers cost `T_read` / `T_write` per byte;
/// * the first touch of a file after [`close_all_files`](SimDisk::close_all_files)
///   charges `Cost_init` (the paper's per-fracture open cost).
///
/// Physical placement: a global bump allocator assigns offsets in allocation
/// order; per-file free lists are reused LIFO. Consequently a bulk-loaded
/// B+Tree occupies one contiguous run (cheap range scans), while a tree that
/// grew by random splits is physically scattered (range scans pay seeks) —
/// the exact fragmentation mechanism of §4.1 of the paper.
pub struct SimDisk {
    cfg: DiskConfig,
    inner: Mutex<Inner>,
}

struct PageSlot {
    offset: u64,
    size: u32,
    file: FileId,
    data: Option<Bytes>,
    freed: bool,
}

struct Inner {
    files: Vec<FileMeta>,
    pages: Vec<PageSlot>,
    /// Byte offset just past the end of the previous access.
    head: u64,
    /// Bump allocator frontier.
    next_offset: u64,
    clock_ms: f64,
    stats: IoStats,
    /// Per-query attribution slots (see [`crate::obs`]): while a thread
    /// holds an attribution guard, every charge also accrues to its
    /// query's slot here. Oldest-first, bounded.
    attributed: Vec<(QueryId, IoStats)>,
    /// Armed fault-injection schedule, if any (see [`crate::fault`]).
    fault: Option<FaultState>,
}

impl SimDisk {
    /// Create an empty device.
    pub fn new(cfg: DiskConfig) -> Self {
        SimDisk {
            cfg,
            inner: Mutex::new(Inner {
                files: Vec::new(),
                pages: Vec::new(),
                head: 0,
                next_offset: 0,
                clock_ms: 0.0,
                stats: IoStats::default(),
                attributed: Vec::new(),
                fault: None,
            }),
        }
    }

    /// The cost model in force.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Create a new logical file whose pages are all `page_size` bytes.
    pub fn create_file(&self, name: &str, page_size: u32) -> FileId {
        let mut g = self.inner.lock();
        let id = FileId(g.files.len() as u32);
        g.files.push(FileMeta::new(name, page_size));
        id
    }

    /// Allocate a page for `file`. Reuses the file's free list first, else
    /// places the page at the global allocation frontier. Allocation itself
    /// is a metadata operation and charges nothing; the data transfer is
    /// charged when the page is written.
    pub fn alloc_page(&self, file: FileId) -> Result<PageId> {
        let mut g = self.inner.lock();
        let fidx = file.0 as usize;
        if fidx >= g.files.len() {
            return Err(StorageError::UnknownFile(file));
        }
        if let Some(pid) = g.files[fidx].free_list.pop() {
            let slot = &mut g.pages[pid.0 as usize];
            slot.freed = false;
            slot.data = None;
            return Ok(pid);
        }
        let page_size = g.files[fidx].page_size;
        let pid = PageId(g.pages.len() as u64);
        let offset = g.next_offset;
        g.next_offset += page_size as u64;
        g.pages.push(PageSlot {
            offset,
            size: page_size,
            file,
            data: None,
            freed: false,
        });
        g.files[fidx].pages.push(pid);
        Ok(pid)
    }

    /// Return a page to its file's free list. The physical slot is retained
    /// and will be handed out again by a future `alloc_page` on the same
    /// file (at its old, possibly distant, offset).
    pub fn free_page(&self, pid: PageId) -> Result<()> {
        let mut g = self.inner.lock();
        let idx = pid.0 as usize;
        if idx >= g.pages.len() {
            return Err(StorageError::UnknownPage(pid));
        }
        if g.pages[idx].freed {
            return Err(StorageError::FreedPage(pid));
        }
        g.pages[idx].freed = true;
        g.pages[idx].data = None;
        let file = g.pages[idx].file;
        g.files[file.0 as usize].free_list.push(pid);
        Ok(())
    }

    /// Read a page, charging head movement + transfer (+ `Cost_init` if the
    /// file is cold). A never-written page reads as zeroes.
    pub fn read_page(&self, pid: PageId) -> Result<Bytes> {
        let mut g = self.inner.lock();
        let idx = pid.0 as usize;
        if idx >= g.pages.len() {
            return Err(StorageError::UnknownPage(pid));
        }
        if g.pages[idx].freed {
            return Err(StorageError::FreedPage(pid));
        }
        match g.check_fault(false) {
            FaultOutcome::Crashed => return Err(StorageError::Crashed),
            FaultOutcome::Transient => return Err(StorageError::Transient("read_page")),
            _ => {}
        }
        let file = g.pages[idx].file;
        Inner::charge_open(&mut g, &self.cfg, file);
        let (offset, size) = (g.pages[idx].offset, g.pages[idx].size);
        Inner::charge_move(&mut g, &self.cfg, offset);
        let cost = self.cfg.read_cost_ms(size as u64);
        g.clock_ms += cost;
        g.stats.read_ms += cost;
        g.stats.page_reads += 1;
        g.stats.bytes_read += size as u64;
        if let Some(a) = g.attributed_slot() {
            a.read_ms += cost;
            a.page_reads += 1;
            a.bytes_read += size as u64;
        }
        g.head = offset + size as u64;
        Ok(g.pages[idx]
            .data
            .clone()
            .unwrap_or_else(|| Bytes::from(vec![0u8; size as usize])))
    }

    /// Write a page, charging head movement + transfer (+ `Cost_init` if the
    /// file is cold). The buffer must match the file's page size exactly.
    pub fn write_page(&self, pid: PageId, data: Bytes) -> Result<()> {
        let mut g = self.inner.lock();
        let idx = pid.0 as usize;
        if idx >= g.pages.len() {
            return Err(StorageError::UnknownPage(pid));
        }
        if g.pages[idx].freed {
            return Err(StorageError::FreedPage(pid));
        }
        let size = g.pages[idx].size;
        if data.len() != size as usize {
            return Err(StorageError::PageSizeMismatch {
                page: pid,
                expected: size as usize,
                got: data.len(),
            });
        }
        let torn = match g.check_fault(true) {
            FaultOutcome::Crashed => return Err(StorageError::Crashed),
            FaultOutcome::Transient => return Err(StorageError::Transient("write_page")),
            FaultOutcome::Torn(frac) => Some(frac),
            FaultOutcome::Ok => None,
        };
        let file = g.pages[idx].file;
        Inner::charge_open(&mut g, &self.cfg, file);
        let offset = g.pages[idx].offset;
        Inner::charge_move(&mut g, &self.cfg, offset);
        let cost = self.cfg.write_cost_ms(size as u64);
        g.clock_ms += cost;
        g.stats.write_ms += cost;
        g.stats.page_writes += 1;
        g.stats.bytes_written += size as u64;
        if let Some(a) = g.attributed_slot() {
            a.write_ms += cost;
            a.page_writes += 1;
            a.bytes_written += size as u64;
        }
        g.head = offset + size as u64;
        g.pages[idx].data = Some(match torn {
            // A torn write persists only the leading sectors of the new
            // buffer; the tail keeps whatever was on the platter (stale
            // bytes, or zeroes for a never-written page). The device still
            // reports success — only checksums can catch this.
            Some(frac) => {
                let cut = ((size as f64 * frac) as usize).min(size as usize);
                let old = g.pages[idx]
                    .data
                    .clone()
                    .unwrap_or_else(|| Bytes::from(vec![0u8; size as usize]));
                let mut merged = data[..cut].to_vec();
                merged.extend_from_slice(&old[cut..]);
                Bytes::from(merged)
            }
            None => data,
        });
        Ok(())
    }

    /// Pages of the same file that sit physically contiguous *after*
    /// `pid`, in offset order, up to `max` of them. Stops at the first
    /// gap, file change, or freed slot. This is what the buffer pool's
    /// sequential read-ahead prefetches: the continuation of the run the
    /// reader is currently scanning.
    pub fn contiguous_run_after(&self, pid: PageId, max: usize) -> Vec<PageId> {
        let g = self.inner.lock();
        let mut out = Vec::new();
        let idx = pid.0 as usize;
        let Some(slot) = g.pages.get(idx) else {
            return out;
        };
        let (file, mut expected) = (slot.file, slot.offset + slot.size as u64);
        // The bump allocator assigns offsets in allocation order, so the
        // physical successor of page i is page i+1 unless a free-list
        // reuse broke the run.
        for next in g.pages.iter().skip(idx + 1).take(max) {
            if out.len() >= max || next.file != file || next.offset != expected || next.freed {
                break;
            }
            expected += next.size as u64;
            out.push(PageId((idx + 1 + out.len()) as u64));
        }
        out
    }

    /// Read a batch of pages in one pass: one head move to the first page,
    /// then per-page transfers (contiguous pages charge no further moves —
    /// the read-ahead path passes a physically contiguous run, making the
    /// whole batch one seek + one sequential transfer).
    pub fn read_run(&self, pids: &[PageId]) -> Result<Vec<Bytes>> {
        let mut g = self.inner.lock();
        let mut out = Vec::with_capacity(pids.len());
        for &pid in pids {
            let idx = pid.0 as usize;
            if idx >= g.pages.len() {
                return Err(StorageError::UnknownPage(pid));
            }
            if g.pages[idx].freed {
                return Err(StorageError::FreedPage(pid));
            }
            match g.check_fault(false) {
                FaultOutcome::Crashed => return Err(StorageError::Crashed),
                FaultOutcome::Transient => return Err(StorageError::Transient("read_run")),
                _ => {}
            }
            let file = g.pages[idx].file;
            Inner::charge_open(&mut g, &self.cfg, file);
            let (offset, size) = (g.pages[idx].offset, g.pages[idx].size);
            Inner::charge_move(&mut g, &self.cfg, offset);
            let cost = self.cfg.read_cost_ms(size as u64);
            g.clock_ms += cost;
            g.stats.read_ms += cost;
            g.stats.page_reads += 1;
            g.stats.bytes_read += size as u64;
            if let Some(a) = g.attributed_slot() {
                a.read_ms += cost;
                a.page_reads += 1;
                a.bytes_read += size as u64;
            }
            g.head = offset + size as u64;
            out.push(
                g.pages[idx]
                    .data
                    .clone()
                    .unwrap_or_else(|| Bytes::from(vec![0u8; size as usize])),
            );
        }
        Ok(out)
    }

    /// Physical byte offset of a page (used by the buffer pool to flush in
    /// elevator order and by benchmarks for locality diagnostics).
    pub fn page_offset(&self, pid: PageId) -> Result<u64> {
        let g = self.inner.lock();
        g.pages
            .get(pid.0 as usize)
            .map(|s| s.offset)
            .ok_or(StorageError::UnknownPage(pid))
    }

    /// The file a page belongs to.
    pub fn page_file(&self, pid: PageId) -> Result<FileId> {
        let g = self.inner.lock();
        g.pages
            .get(pid.0 as usize)
            .map(|s| s.file)
            .ok_or(StorageError::UnknownPage(pid))
    }

    /// Page size of a file in bytes.
    pub fn page_size_of(&self, file: FileId) -> Result<u32> {
        let g = self.inner.lock();
        g.files
            .get(file.0 as usize)
            .map(|f| f.page_size)
            .ok_or(StorageError::UnknownFile(file))
    }

    /// Live bytes of one file (allocated pages minus free list).
    pub fn file_bytes(&self, file: FileId) -> Result<u64> {
        let g = self.inner.lock();
        let f = g
            .files
            .get(file.0 as usize)
            .ok_or(StorageError::UnknownFile(file))?;
        Ok(f.live_pages() as u64 * f.page_size as u64)
    }

    /// Live bytes across all files — the "database size" of Table 8.
    pub fn total_live_bytes(&self) -> u64 {
        let g = self.inner.lock();
        g.files
            .iter()
            .map(|f| f.live_pages() as u64 * f.page_size as u64)
            .sum()
    }

    /// Free every live page of a file (metadata-only: dropping a whole
    /// index during a merge does not transfer data). The file id remains
    /// valid and its physical slots are reusable through the free list.
    pub fn free_file_pages(&self, file: FileId) -> Result<()> {
        let mut g = self.inner.lock();
        let fidx = file.0 as usize;
        if fidx >= g.files.len() {
            return Err(StorageError::UnknownFile(file));
        }
        let pages = g.files[fidx].pages.clone();
        for pid in pages {
            let slot = &mut g.pages[pid.0 as usize];
            if !slot.freed {
                slot.freed = true;
                slot.data = None;
                g.files[fidx].free_list.push(pid);
            }
        }
        Ok(())
    }

    /// Mark every file closed so that the next touch of each charges
    /// `Cost_init` again (a cold start).
    pub fn close_all_files(&self) {
        let mut g = self.inner.lock();
        for f in &mut g.files {
            f.open = false;
        }
    }

    /// Park the head at offset zero without charging anything (part of the
    /// cold-start reset; the first access after it will pay the seek).
    pub fn reset_head(&self) {
        self.inner.lock().head = 0;
    }

    /// Simulated wall clock, milliseconds.
    pub fn clock_ms(&self) -> f64 {
        self.inner.lock().clock_ms
    }

    /// Snapshot of cumulative I/O statistics.
    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    /// Snapshot of the I/O attributed to `qid` so far (see
    /// [`crate::obs`]); zero stats if the query never charged anything.
    /// Non-consuming: the slot keeps accruing.
    pub fn attributed_stats(&self, qid: QueryId) -> IoStats {
        let g = self.inner.lock();
        g.attributed
            .iter()
            .find(|(q, _)| *q == qid)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Remove and return the I/O attributed to `qid` (zero stats if the
    /// query never charged anything). Callers collect their slot when the
    /// query finishes so the bounded slot table never fills with
    /// completed queries.
    pub fn take_attributed(&self, qid: QueryId) -> IoStats {
        let mut g = self.inner.lock();
        match g.attributed.iter().position(|(q, _)| *q == qid) {
            Some(i) => g.attributed.remove(i).1,
            None => IoStats::default(),
        }
    }

    /// Charge an explicit number of simulated milliseconds (used by the CPU
    /// cost hooks in the executor; kept out of the I/O breakdown).
    pub fn charge_ms(&self, ms: f64) {
        self.inner.lock().clock_ms += ms;
    }

    /// Arm a deterministic [`FaultPlan`]: from now on page operations are
    /// counted and may crash, tear, or fail transiently according to the
    /// plan (see [`crate::fault`]). Replaces any previous plan and resets
    /// the op cursor and [`FaultCounters`].
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.inner.lock().fault = Some(FaultState::new(plan));
    }

    /// Disarm fault injection — the "reboot" half of a crash test. The
    /// accumulated [`FaultCounters`] are discarded with the plan, so read
    /// them first if the test asserts on them.
    pub fn clear_fault_plan(&self) {
        self.inner.lock().fault = None;
    }

    /// What the armed plan has injected so far (zeroes when no plan is
    /// armed).
    pub fn fault_counters(&self) -> FaultCounters {
        self.inner
            .lock()
            .fault
            .as_ref()
            .map(|f| f.counters)
            .unwrap_or_default()
    }

    /// The most recently created file with this exact name, if any.
    /// Recovery uses this to locate a table's WAL and checkpoint files:
    /// names may repeat across incarnations (recovery creates fresh files
    /// under the old names), and the latest one is the live one.
    pub fn find_file(&self, name: &str) -> Option<FileId> {
        let g = self.inner.lock();
        g.files
            .iter()
            .rposition(|f| f.name == name)
            .map(|i| FileId(i as u32))
    }

    /// Pages of a file in allocation order (freed slots included — the
    /// WAL never frees individual pages, so its readers see the log in
    /// append order).
    pub fn file_pages(&self, file: FileId) -> Result<Vec<PageId>> {
        let g = self.inner.lock();
        g.files
            .get(file.0 as usize)
            .map(|f| f.pages.clone())
            .ok_or(StorageError::UnknownFile(file))
    }

    /// Names and live sizes of all files, for reports.
    pub fn file_inventory(&self) -> Vec<(FileId, String, u64)> {
        let g = self.inner.lock();
        g.files
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (
                    FileId(i as u32),
                    f.name.clone(),
                    f.live_pages() as u64 * f.page_size as u64,
                )
            })
            .collect()
    }
}

impl Inner {
    /// Consult the armed fault plan (if any) about one page operation.
    fn check_fault(&mut self, write: bool) -> FaultOutcome {
        match self.fault.as_mut() {
            Some(f) => f.check_op(write),
            None => FaultOutcome::Ok,
        }
    }

    /// The attribution slot of the query currently on this thread's
    /// attribution stack, if any (find-or-create, oldest evicted).
    fn attributed_slot(&mut self) -> Option<&mut IoStats> {
        let qid = obs::current_query()?;
        if let Some(i) = self.attributed.iter().position(|(q, _)| *q == qid) {
            return Some(&mut self.attributed[i].1);
        }
        if self.attributed.len() >= MAX_ATTRIBUTED_QUERIES {
            self.attributed.remove(0);
        }
        self.attributed.push((qid, IoStats::default()));
        Some(&mut self.attributed.last_mut().unwrap().1)
    }

    fn charge_open(g: &mut Inner, cfg: &DiskConfig, file: FileId) {
        let f = &mut g.files[file.0 as usize];
        if !f.open {
            f.open = true;
            g.clock_ms += cfg.init_ms;
            g.stats.init_ms += cfg.init_ms;
            g.stats.file_opens += 1;
            if let Some(a) = g.attributed_slot() {
                a.init_ms += cfg.init_ms;
                a.file_opens += 1;
            }
        }
    }

    fn charge_move(g: &mut Inner, cfg: &DiskConfig, to: u64) {
        let cost = cfg.move_cost_ms(g.head, to);
        if cost > 0.0 {
            g.clock_ms += cost;
            g.stats.seek_ms += cost;
            g.stats.seeks += 1;
            if let Some(a) = g.attributed_slot() {
                a.seek_ms += cost;
                a.seeks += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskConfig::default())
    }

    #[test]
    fn sequential_writes_charge_no_seeks_after_first() {
        let d = disk();
        let f = d.create_file("t", 8192);
        let pages: Vec<_> = (0..16).map(|_| d.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            d.write_page(p, Bytes::from(vec![1u8; 8192])).unwrap();
        }
        let s = d.stats();
        assert_eq!(s.page_writes, 16);
        // Head starts at 0 and the first page is at 0: zero seeks.
        assert_eq!(s.seeks, 0);
        assert_eq!(s.file_opens, 1);
    }

    #[test]
    fn random_reads_charge_seeks() {
        let d = disk();
        let f = d.create_file("t", 8192);
        let pages: Vec<_> = (0..64).map(|_| d.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            d.write_page(p, Bytes::from(vec![1u8; 8192])).unwrap();
        }
        let before = d.stats();
        // Read backwards: every read is a backward move => a seek.
        for &p in pages.iter().rev() {
            d.read_page(p).unwrap();
        }
        let delta = d.stats().since(&before);
        assert_eq!(delta.page_reads, 64);
        assert_eq!(delta.seeks, 64, "every backward hop must seek");
        assert!(delta.seek_ms > 0.0);
    }

    #[test]
    fn forward_scan_is_sequential() {
        let d = disk();
        let f = d.create_file("t", 8192);
        let pages: Vec<_> = (0..64).map(|_| d.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            d.write_page(p, Bytes::from(vec![1u8; 8192])).unwrap();
        }
        d.reset_head();
        let before = d.stats();
        for &p in &pages {
            d.read_page(p).unwrap();
        }
        let delta = d.stats().since(&before);
        assert_eq!(delta.seeks, 0, "forward scan from offset 0 never seeks");
        assert!((delta.read_ms - d.config().read_cost_ms(64 * 8192)).abs() < 1e-9);
    }

    #[test]
    fn cold_open_charges_init_once_per_file() {
        let d = disk();
        let f = d.create_file("t", 4096);
        let p = d.alloc_page(f).unwrap();
        d.write_page(p, Bytes::from(vec![0u8; 4096])).unwrap();
        d.read_page(p).unwrap();
        assert_eq!(d.stats().file_opens, 1);
        d.close_all_files();
        d.read_page(p).unwrap();
        assert_eq!(d.stats().file_opens, 2);
    }

    #[test]
    fn freed_pages_are_reused_at_old_offsets() {
        let d = disk();
        let f = d.create_file("t", 4096);
        let a = d.alloc_page(f).unwrap();
        let _b = d.alloc_page(f).unwrap();
        let a_off = d.page_offset(a).unwrap();
        d.free_page(a).unwrap();
        let c = d.alloc_page(f).unwrap();
        assert_eq!(c, a, "free list must be reused");
        assert_eq!(d.page_offset(c).unwrap(), a_off);
    }

    #[test]
    fn freed_page_access_is_an_error() {
        let d = disk();
        let f = d.create_file("t", 4096);
        let p = d.alloc_page(f).unwrap();
        d.free_page(p).unwrap();
        assert!(matches!(d.read_page(p), Err(StorageError::FreedPage(_))));
        assert!(matches!(d.free_page(p), Err(StorageError::FreedPage(_))));
    }

    #[test]
    fn page_size_mismatch_is_rejected() {
        let d = disk();
        let f = d.create_file("t", 4096);
        let p = d.alloc_page(f).unwrap();
        let err = d.write_page(p, Bytes::from(vec![0u8; 100])).unwrap_err();
        assert!(matches!(err, StorageError::PageSizeMismatch { .. }));
    }

    #[test]
    fn never_written_pages_read_as_zeroes() {
        let d = disk();
        let f = d.create_file("t", 512);
        let p = d.alloc_page(f).unwrap();
        let data = d.read_page(p).unwrap();
        assert_eq!(data.len(), 512);
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    fn live_bytes_track_alloc_and_free() {
        let d = disk();
        let f = d.create_file("t", 4096);
        let a = d.alloc_page(f).unwrap();
        let _ = d.alloc_page(f).unwrap();
        assert_eq!(d.file_bytes(f).unwrap(), 8192);
        d.free_page(a).unwrap();
        assert_eq!(d.file_bytes(f).unwrap(), 4096);
        assert_eq!(d.total_live_bytes(), 4096);
    }

    #[test]
    fn interleaved_files_interleave_physically() {
        let d = disk();
        let f1 = d.create_file("a", 4096);
        let f2 = d.create_file("b", 4096);
        let p1 = d.alloc_page(f1).unwrap();
        let p2 = d.alloc_page(f2).unwrap();
        let p3 = d.alloc_page(f1).unwrap();
        let o1 = d.page_offset(p1).unwrap();
        let o2 = d.page_offset(p2).unwrap();
        let o3 = d.page_offset(p3).unwrap();
        assert!(o1 < o2 && o2 < o3, "offsets follow allocation order");
    }
}
