//! Property tests for the simulated disk's accounting invariants.

use proptest::prelude::*;
use std::sync::Arc;
use upi_storage::{BufferPool, DiskConfig, SimDisk};

#[derive(Debug, Clone)]
enum Op {
    Alloc,
    Write(usize, u8),
    Read(usize),
    Free(usize),
    CloseAll,
    ResetHead,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Alloc),
        4 => (0usize..64, any::<u8>()).prop_map(|(i, b)| Op::Write(i, b)),
        4 => (0usize..64).prop_map(Op::Read),
        1 => (0usize..64).prop_map(Op::Free),
        1 => Just(Op::CloseAll),
        1 => Just(Op::ResetHead),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clock_is_monotone_and_equals_stat_sum(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let disk = SimDisk::new(DiskConfig::default());
        let f = disk.create_file("t", 512);
        let mut pages = Vec::new();
        let mut freed = std::collections::HashSet::new();
        let mut prev_clock = 0.0f64;
        for op in ops {
            match op {
                Op::Alloc => {
                    let p = disk.alloc_page(f).unwrap();
                    freed.remove(&p);
                    if !pages.contains(&p) {
                        pages.push(p);
                    }
                }
                Op::Write(i, b) => {
                    if let Some(&p) = pages.get(i % pages.len().max(1)) {
                        if !freed.contains(&p) {
                            disk.write_page(p, bytes::Bytes::from(vec![b; 512])).unwrap();
                        }
                    }
                }
                Op::Read(i) => {
                    if let Some(&p) = pages.get(i % pages.len().max(1)) {
                        if !freed.contains(&p) {
                            disk.read_page(p).unwrap();
                        }
                    }
                }
                Op::Free(i) => {
                    if let Some(&p) = pages.get(i % pages.len().max(1)) {
                        if freed.insert(p) {
                            disk.free_page(p).unwrap();
                        }
                    }
                }
                Op::CloseAll => disk.close_all_files(),
                Op::ResetHead => disk.reset_head(),
            }
            let clock = disk.clock_ms();
            prop_assert!(clock + 1e-12 >= prev_clock, "clock must be monotone");
            prev_clock = clock;
            // The stats breakdown partitions the clock.
            prop_assert!((disk.stats().total_ms() - clock).abs() < 1e-6);
        }
        // Live bytes equal allocated minus freed pages.
        let live = pages.len() - freed.len();
        prop_assert_eq!(disk.file_bytes(f).unwrap(), live as u64 * 512);
    }

    #[test]
    fn pool_never_loses_writes(
        writes in proptest::collection::vec((0usize..16, any::<u8>()), 1..100),
        cap_pages in 1usize..8,
    ) {
        let disk = Arc::new(SimDisk::new(DiskConfig::default()));
        let f = disk.create_file("t", 256);
        let pages: Vec<_> = (0..16).map(|_| disk.alloc_page(f).unwrap()).collect();
        let pool = BufferPool::new(disk.clone(), cap_pages * 256);
        let mut model = std::collections::HashMap::new();
        for (i, b) in writes {
            let p = pages[i];
            pool.put(p, bytes::Bytes::from(vec![b; 256]));
            model.insert(p, b);
        }
        pool.clear();
        // After a full flush+drop, the device holds the latest value of
        // every page.
        for (p, b) in model {
            let data = disk.read_page(p).unwrap();
            prop_assert!(data.iter().all(|&x| x == b), "page {p:?} lost write");
        }
    }
}
