//! Ablation 3 — sensitivity of the headline result to the simulated disk
//! model.
//!
//! The reproduction's central substitution is the simulated disk
//! (`DESIGN.md`). This ablation re-runs Query 1 (PII vs UPI) under
//! different seek-floor assumptions — from an SSD-like device (no
//! rotational penalty) to a pessimistic spindle — showing that the paper's
//! conclusion (the clustered UPI beats the secondary PII) holds across the
//! model space, while the *magnitude* scales with how expensive random
//! access is, exactly as the paper's analysis predicts.

use std::sync::Arc;

use upi::{DiscreteUpi, Pii, UnclusteredHeap, UpiConfig};
use upi_bench::{banner, dblp_config, header, measure_cold, ms, summary, POOL_BYTES};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_workloads::dblp::{self, author_fields};

fn main() {
    let mut cfg = dblp_config();
    cfg.n_authors /= 2; // ablations run at half scale
    let data = dblp::generate(&cfg);
    let key = data.popular_institution();
    banner(
        "Ablation 3",
        "Disk-model sensitivity: Query 1 (QT=0.3) under varying seek floors",
        "UPI wins under every model; the gap tracks random-access cost",
    );
    header(&["seek_floor_ms", "seek_ms", "PII_ms", "UPI_ms", "speedup"]);
    let mut speedups = Vec::new();
    for (floor, seek) in [(0.05, 0.1), (2.0, 10.0), (4.0, 10.0), (8.0, 16.0)] {
        let disk = DiskConfig {
            seek_floor_ms: floor,
            seek_ms: seek,
            ..DiskConfig::default()
        };
        let store = Store::new(Arc::new(SimDisk::new(disk)), POOL_BYTES);
        let mut heap = UnclusteredHeap::create(store.clone(), "heap", 8192).unwrap();
        heap.bulk_load(&data.authors).unwrap();
        let mut pii = Pii::create(store.clone(), "pii", author_fields::INSTITUTION, 8192).unwrap();
        pii.bulk_load(&data.authors).unwrap();
        let mut upi = DiscreteUpi::create(
            store.clone(),
            "upi",
            author_fields::INSTITUTION,
            UpiConfig::default(),
        )
        .unwrap();
        upi.bulk_load(&data.authors).unwrap();

        let p = measure_cold(&store, || pii.ptq(&heap, key, 0.3).unwrap().len());
        let u = measure_cold(&store, || upi.ptq(key, 0.3).unwrap().len());
        assert_eq!(p.rows, u.rows);
        let speedup = p.sim_ms / u.sim_ms;
        speedups.push(speedup);
        println!(
            "{floor}\t{seek}\t{}\t{}\t{speedup:.1}x",
            ms(p.sim_ms),
            ms(u.sim_ms)
        );
    }
    summary(
        "abl3.upi_wins_under_all_models",
        speedups.iter().all(|&s| s > 1.0),
    );
}
