//! Table 8 — merging cost: time and database size for three successive
//! merges of a growing Fractured UPI.
//!
//! Paper shape: merge time grows linearly with database size and is close
//! to the cost of sequentially reading + writing the whole database
//! (`Cost_merge = S_table (T_read + T_write)`, §6.2).

use upi::cost::{model_for_fractured, CostModel};
use upi_bench::setups::fractured_author_setup;
use upi_bench::{banner, header, measure_cold, ms, summary};

fn main() {
    let mut s = fractured_author_setup(0.1);
    banner(
        "Table 8",
        "Merging cost over three successive merges",
        "time ≈ sequential read+write of the DB, growing with size",
    );
    header(&["merge#", "time_ms", "db_bytes", "model_ms", "real/model"]);
    let mut next_id = s.data.authors.len() as u64;
    let batch = s.data.authors.len() / 5; // grow 20% between merges
    let mut ratios = Vec::new();
    for round in 1..=3 {
        for b in 0..2 {
            let new = s.data.more_authors(batch, next_id, (round * 10 + b) as u64);
            next_id += batch as u64;
            for t in new {
                s.fractured.insert(t).unwrap();
            }
            s.fractured.flush().unwrap();
        }
        let db_bytes = s.fractured.total_bytes();
        let model: CostModel = model_for_fractured(s.store.disk.config(), &s.fractured);
        let model_ms = model.merge_cost_ms(db_bytes);
        let m = measure_cold(&s.store, || {
            s.fractured.merge().unwrap();
            s.store.pool.flush_all();
            1
        });
        let ratio = m.sim_ms / model_ms;
        ratios.push(ratio);
        println!(
            "{round}\t{}\t{db_bytes}\t{}\t{ratio:.2}",
            ms(m.sim_ms),
            ms(model_ms)
        );
    }
    let gm = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    summary("tab8.real_over_model_geomean", format!("{gm:.2}"));
}
