//! Streaming vs batch execution: pages read and simulated time for
//! fig05/fig06-style range and top-k workloads.
//!
//! The streaming executor's claim is that early-terminating,
//! cursor-driven operators touch strictly less of the disk than
//! materialize-then-truncate batch evaluation:
//!
//! * **Point top-k (fig05-style, Query 2 shape)** — `UpiPointMerge`
//!   streams the heap run in confidence order and stops after k rows;
//!   the batch path materializes the whole run (plus the cutoff merge)
//!   and truncates.
//! * **Secondary top-k (fig06-style, Query 3 shape)** — `SecondaryProbe`
//!   reads only the k most-confident entries of the compact entry run
//!   and dereferences k heap pointers; the batch path fetches every
//!   qualifying tuple.
//! * **Range (fig05-style)** — both read the same sequential run (no
//!   sound early exit under summing semantics); reported for parity and
//!   to show read-ahead keeping the run sequential.
//!
//! Pages read are **buffer-pool** counters (demand misses + read-ahead);
//! both sides run cold. Results are asserted identical before anything
//! is reported. A machine-readable `BENCH_streaming.json` is written for
//! the perf-trajectory tooling (override the path with
//! `UPI_BENCH_JSON`).

use upi::{PtqResult, TableLayout, UpiConfig};
use upi_bench::setups::publication_setup;
use upi_bench::{banner, fresh_store, header, ms, scale, summary};
use upi_query::{AccessPath, Catalog, PhysicalPlan, PtqQuery, UncertainDb};
use upi_storage::{PoolCounters, Store};
use upi_workloads::dblp::{publication_fields, DblpData};

/// One cold measurement attributed through the buffer pool.
struct PoolMeasured {
    pool: PoolCounters,
    sim_ms: f64,
    bytes_read: u64,
    rows: Vec<PtqResult>,
}

fn measure_pool(store: &Store, f: impl FnOnce() -> Vec<PtqResult>) -> PoolMeasured {
    store.go_cold();
    let pool_before = store.pool.counters();
    let io_before = store.disk.stats();
    let rows = f();
    let io = store.disk.stats().since(&io_before);
    PoolMeasured {
        pool: store.pool.counters().since(&pool_before),
        sim_ms: io.total_ms(),
        bytes_read: io.bytes_read,
        rows,
    }
}

fn assert_same_rows(label: &str, a: &[PtqResult], b: &[PtqResult]) {
    assert_eq!(a.len(), b.len(), "{label}: row counts diverge");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.tuple.id, y.tuple.id, "{label}: ids diverge");
        assert!(
            (x.confidence - y.confidence).abs() < 1e-9,
            "{label}: confidences diverge"
        );
    }
}

/// Force a specific access path of a plan.
fn forced(plan: &PhysicalPlan, path: &AccessPath) -> PhysicalPlan {
    let mut p = plan.clone();
    p.candidates.retain(|c| &c.path == path);
    assert!(!p.candidates.is_empty(), "path {path:?} not enumerated");
    p
}

struct Case {
    name: &'static str,
    streaming_pages: u64,
    batch_pages: u64,
    streaming_ms: f64,
    batch_ms: f64,
    streaming_bytes: u64,
    batch_bytes: u64,
    /// Read-ahead pages prefetched by the streaming side but evicted
    /// unused — nonzero means the pool speculated past what the plan
    /// consumed (the scatter-shaped regression this bench gates on).
    streaming_wasted: u64,
    /// The same streaming plan on the durability-enabled twin table:
    /// reads never touch the WAL, so these must price like `streaming_*`.
    wal_pages: u64,
    wal_ms: f64,
    rows: usize,
}

/// The instrumented executor must not cost I/O or device time: within
/// 5% of the committed baseline, per case.
const OVERHEAD_GATE: f64 = 1.05;

/// Pull `"key": <number>` out of a one-line JSON object (fixed-shape
/// extractor for the committed baseline, not a JSON parser).
fn extract_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The committed baseline for case `name`: streaming `(pages_read,
/// elapsed_ms)`.
fn baseline_case(json: &str, name: &str) -> Option<(f64, f64)> {
    let pat = format!("\"name\": \"{name}\"");
    let start = json.find(&pat)?;
    let line_end = json[start..]
        .find('\n')
        .map(|e| start + e)
        .unwrap_or(json.len());
    let obj = &json[start..line_end];
    let spos = obj.find("\"streaming\"")?;
    let send = obj[spos..].find('}').map(|e| spos + e).unwrap_or(obj.len());
    let sobj = &obj[spos..send];
    Some((
        extract_num(sobj, "pages_read")?,
        extract_num(sobj, "elapsed_ms")?,
    ))
}

fn main() {
    let s = publication_setup(0.1);
    let mit = s.data.popular_institution();
    let japan = s.data.query_country();
    let catalog = Catalog::new(s.store.disk.config())
        .with_upi(&s.upi)
        .with_pool(&s.store.pool);
    let k = 10;
    let mut cases: Vec<Case> = Vec::new();
    let mut kept_rows: Vec<Vec<PtqResult>> = Vec::new();

    banner(
        "streaming_vs_batch",
        "streaming executor vs materialize-then-truncate (pages via pool counters)",
        "streaming top-k reads >=2x fewer pages; identical result sets",
    );
    header(&[
        "case",
        "stream_pages",
        "batch_pages",
        "ratio",
        "stream_ms",
        "batch_ms",
        "rows",
    ]);

    // --- Point top-k (fig05-style): UpiPointMerge vs full run + truncate.
    {
        let q = PtqQuery::eq(publication_fields::INSTITUTION, mit)
            .with_qt(0.1)
            .with_top_k(k);
        let plan = forced(
            &q.plan(&catalog).unwrap(),
            &AccessPath::UpiHeap { use_cutoff: false },
        );
        let streaming = measure_pool(&s.store, || plan.execute(&catalog).unwrap().rows);
        let batch = measure_pool(&s.store, || {
            let mut rows = s.upi.ptq(mit, 0.1).unwrap();
            rows.truncate(k);
            rows
        });
        assert_same_rows("point top-k", &streaming.rows, &batch.rows);
        cases.push(Case {
            name: "point_topk",
            streaming_pages: streaming.pool.pages_read(),
            batch_pages: batch.pool.pages_read(),
            streaming_ms: streaming.sim_ms,
            batch_ms: batch.sim_ms,
            streaming_bytes: streaming.bytes_read,
            batch_bytes: batch.bytes_read,
            streaming_wasted: streaming.pool.readahead_wasted,
            wal_pages: 0,
            wal_ms: 0.0,
            rows: streaming.rows.len(),
        });
        kept_rows.push(streaming.rows);
    }

    // --- Secondary top-k (fig06-style): SecondaryProbe with limit
    //     pushdown vs full tailored access + truncate.
    {
        let q = PtqQuery::eq(publication_fields::COUNTRY, japan)
            .with_qt(0.1)
            .with_top_k(k);
        let plan = forced(
            &q.plan(&catalog).unwrap(),
            &AccessPath::UpiSecondary {
                index: 0,
                tailored: true,
            },
        );
        let streaming = measure_pool(&s.store, || plan.execute(&catalog).unwrap().rows);
        let batch = measure_pool(&s.store, || {
            let mut rows = s.upi.ptq_secondary(0, japan, 0.1, true).unwrap();
            rows.truncate(k);
            rows
        });
        assert_same_rows("secondary top-k", &streaming.rows, &batch.rows);
        cases.push(Case {
            name: "secondary_topk",
            streaming_pages: streaming.pool.pages_read(),
            batch_pages: batch.pool.pages_read(),
            streaming_ms: streaming.sim_ms,
            batch_ms: batch.sim_ms,
            streaming_bytes: streaming.bytes_read,
            batch_bytes: batch.bytes_read,
            streaming_wasted: streaming.pool.readahead_wasted,
            wal_pages: 0,
            wal_ms: 0.0,
            rows: streaming.rows.len(),
        });
        kept_rows.push(streaming.rows);
    }

    // --- Range (fig05-style): same sequential run either way; streaming
    //     keeps memory bounded and read-ahead keeps it sequential.
    {
        let hi = mit + 3;
        let q = PtqQuery::range(publication_fields::INSTITUTION, mit, hi).with_qt(0.2);
        let plan = forced(&q.plan(&catalog).unwrap(), &AccessPath::UpiRange);
        let streaming = measure_pool(&s.store, || plan.execute(&catalog).unwrap().rows);
        let batch = measure_pool(&s.store, || s.upi.ptq_range(mit, hi, 0.2).unwrap());
        assert_same_rows("range", &streaming.rows, &batch.rows);
        cases.push(Case {
            name: "range",
            streaming_pages: streaming.pool.pages_read(),
            batch_pages: batch.pool.pages_read(),
            streaming_ms: streaming.sim_ms,
            batch_ms: batch.sim_ms,
            streaming_bytes: streaming.bytes_read,
            batch_bytes: batch.bytes_read,
            streaming_wasted: streaming.pool.readahead_wasted,
            wal_pages: 0,
            wal_ms: 0.0,
            rows: streaming.rows.len(),
        });
        kept_rows.push(streaming.rows);
    }

    // --- WAL-on twin: the same data behind a durability-enabled session.
    //     Queries never touch the log, so every streaming read path must
    //     price within the same 5% gate as the instrumented executor —
    //     durability may tax writes, never reads.
    {
        let wal_store = fresh_store();
        let mut wdb = UncertainDb::create(
            wal_store.clone(),
            "pub_wal",
            DblpData::publication_schema(),
            publication_fields::INSTITUTION,
            TableLayout::Upi(UpiConfig {
                cutoff: 0.1,
                ..UpiConfig::default()
            }),
        )
        .unwrap();
        wdb.add_secondary(publication_fields::COUNTRY).unwrap();
        wdb.enable_durability().unwrap();
        wdb.load(&s.data.publications).unwrap();
        wdb.sync_wal().unwrap();
        let wal_catalog = Catalog::new(wal_store.disk.config())
            .with_upi(wdb.table().as_upi().unwrap())
            .with_pool(&wal_store.pool);
        let shapes: Vec<(PtqQuery, AccessPath)> = vec![
            (
                PtqQuery::eq(publication_fields::INSTITUTION, mit)
                    .with_qt(0.1)
                    .with_top_k(k),
                AccessPath::UpiHeap { use_cutoff: false },
            ),
            (
                PtqQuery::eq(publication_fields::COUNTRY, japan)
                    .with_qt(0.1)
                    .with_top_k(k),
                AccessPath::UpiSecondary {
                    index: 0,
                    tailored: true,
                },
            ),
            (
                PtqQuery::range(publication_fields::INSTITUTION, mit, mit + 3).with_qt(0.2),
                AccessPath::UpiRange,
            ),
        ];
        for (i, (q, path)) in shapes.into_iter().enumerate() {
            let plan = forced(&q.plan(&wal_catalog).unwrap(), &path);
            let m = measure_pool(&wal_store, || plan.execute(&wal_catalog).unwrap().rows);
            assert_same_rows(
                &format!("{} (wal twin)", cases[i].name),
                &m.rows,
                &kept_rows[i],
            );
            cases[i].wal_pages = m.pool.pages_read();
            cases[i].wal_ms = m.sim_ms;
        }
        for c in &cases {
            assert!(
                c.wal_pages as f64 <= c.streaming_pages as f64 * OVERHEAD_GATE + 1.0,
                "{}: WAL-on read path touched {} pages vs {} without a log \
                 (5% gate) — durability must not tax reads",
                c.name,
                c.wal_pages,
                c.streaming_pages
            );
            assert!(
                c.wal_ms <= c.streaming_ms * OVERHEAD_GATE + 1.0,
                "{}: WAL-on read path took {:.3} ms vs {:.3} without a log (5% gate)",
                c.name,
                c.wal_ms,
                c.streaming_ms
            );
            summary(
                &format!("streaming.{}_wal_on", c.name),
                format!(
                    "{} pages vs {} wal-off, {:.1} ms vs {:.1}",
                    c.wal_pages, c.streaming_pages, c.wal_ms, c.streaming_ms
                ),
            );
        }
    }

    for c in &cases {
        let ratio = c.batch_pages as f64 / c.streaming_pages.max(1) as f64;
        println!(
            "{}\t{}\t{}\t{:.1}x\t{}\t{}\t{}",
            c.name,
            c.streaming_pages,
            c.batch_pages,
            ratio,
            ms(c.streaming_ms),
            ms(c.batch_ms),
            c.rows
        );
    }

    // Machine-readable trajectory record, at the workspace root by
    // default (cargo bench runs with the package dir as cwd).
    let json_path = std::env::var("UPI_BENCH_JSON").unwrap_or_else(|_| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_streaming.json"))
            .unwrap_or_else(|_| "BENCH_streaming.json".to_string())
    });
    // Overhead gate: the always-on trace/attribution instrumentation may
    // not cost I/O or simulated time — every streaming measurement must
    // stay within 5% of the committed baseline (one-sided: improvements,
    // like the scatter-shaped read-ahead fix, pass). Read the committed
    // file *before* overwriting it.
    match std::fs::read_to_string(&json_path) {
        // Page counts and simulated times are only comparable at the
        // same dataset scale. Baselines predating the scale field were
        // recorded at 0.05 (see CHANGES.md, PR 4).
        Ok(baseline)
            if (extract_num(&baseline, "scale").unwrap_or(0.05) - scale()).abs() < 1e-9 =>
        {
            for c in &cases {
                let Some((base_pages, base_ms)) = baseline_case(&baseline, c.name) else {
                    eprintln!("[gate] no baseline entry for {}; skipped", c.name);
                    continue;
                };
                assert!(
                    c.streaming_pages as f64 <= base_pages * OVERHEAD_GATE + 1.0,
                    "{}: instrumented streaming read {} pages vs baseline {} (5% gate)",
                    c.name,
                    c.streaming_pages,
                    base_pages
                );
                assert!(
                    c.streaming_ms <= base_ms * OVERHEAD_GATE + 1.0,
                    "{}: instrumented streaming took {:.3} ms vs baseline {:.3} (5% gate)",
                    c.name,
                    c.streaming_ms,
                    base_ms
                );
                summary(
                    &format!("streaming.{}_vs_baseline", c.name),
                    format!(
                        "{} pages vs {:.0} baseline, {:.1} ms vs {:.1}",
                        c.streaming_pages, base_pages, c.streaming_ms, base_ms
                    ),
                );
            }
        }
        Ok(_) => eprintln!(
            "[gate] baseline at a different scale than {}; overhead gate skipped",
            scale()
        ),
        Err(_) => eprintln!("[gate] no committed baseline at {json_path}; overhead gate skipped"),
    }

    let mut json = format!("{{\n  \"scale\": {:.3},\n  \"cases\": [\n", scale());
    for (i, c) in cases.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"streaming\": {{\"pages_read\": {}, \"bytes_read\": {}, \"elapsed_ms\": {:.3}, \"readahead_wasted\": {}}}, \"batch\": {{\"pages_read\": {}, \"bytes_read\": {}, \"elapsed_ms\": {:.3}}}, \"wal_on\": {{\"pages_read\": {}, \"elapsed_ms\": {:.3}}}, \"rows\": {}}}{}\n",
            c.name,
            c.streaming_pages,
            c.streaming_bytes,
            c.streaming_ms,
            c.streaming_wasted,
            c.batch_pages,
            c.batch_bytes,
            c.batch_ms,
            c.wal_pages,
            c.wal_ms,
            c.rows,
            if i + 1 == cases.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&json_path, json).expect("write BENCH_streaming.json");
    eprintln!("[json] wrote {json_path}");

    // Acceptance: the top-k streaming paths must read >=2x fewer pages.
    for c in &cases {
        if c.name.ends_with("topk") {
            let ratio = c.batch_pages as f64 / c.streaming_pages.max(1) as f64;
            summary(
                &format!("streaming.{}_page_ratio", c.name),
                format!("{ratio:.1}x"),
            );
            assert!(
                ratio >= 2.0,
                "{}: streaming read {} pages vs batch {} — expected >=2x fewer",
                c.name,
                c.streaming_pages,
                c.batch_pages
            );
        }
    }
    summary("streaming.cases", cases.len());
}
