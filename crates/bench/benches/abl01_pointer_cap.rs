//! Ablation 1 — the §3.2 tuning option: "limit the number of pointers
//! stored in each secondary index entry. Though the query performance
//! gradually degenerates to the normal secondary index access with a
//! tighter limit, such a limit can lower storage consumption."
//!
//! Sweeps `max_secondary_pointers` and reports tailored-access runtime for
//! Query 3 plus the secondary index's size.

use upi::{DiscreteUpi, UpiConfig};
use upi_bench::{banner, dblp_config, fresh_store, header, measure_cold, ms, summary};
use upi_workloads::dblp::{self, publication_fields};

fn main() {
    let mut cfg = dblp_config();
    cfg.n_publications /= 2; // ablations run at half scale
    let data = dblp::generate(&cfg);
    let japan = data.query_country();
    banner(
        "Ablation 1",
        "Secondary-index pointer cap: tailored Query 3 runtime vs index size",
        "tighter caps shrink the index but erode the tailored advantage",
    );
    header(&[
        "max_pointers",
        "tailored_ms",
        "plain_ms",
        "secondary_bytes",
        "rows",
    ]);
    let mut first_size = 0u64;
    let mut last_size = 0u64;
    for cap in [1usize, 2, 4, 10] {
        let store = fresh_store();
        let mut upi = DiscreteUpi::create(
            store.clone(),
            "pub.upi",
            publication_fields::INSTITUTION,
            UpiConfig {
                cutoff: 0.1,
                max_secondary_pointers: cap,
                ..UpiConfig::default()
            },
        )
        .unwrap();
        upi.add_secondary(publication_fields::COUNTRY).unwrap();
        upi.bulk_load(&data.publications).unwrap();
        let tailored = measure_cold(&store, || {
            upi.ptq_secondary(0, japan, 0.2, true).unwrap().len()
        });
        let plain = measure_cold(&store, || {
            upi.ptq_secondary(0, japan, 0.2, false).unwrap().len()
        });
        let size = upi.secondaries()[0].bytes();
        if cap == 1 {
            first_size = size;
        }
        last_size = size;
        println!(
            "{cap}\t{}\t{}\t{size}\t{}",
            ms(tailored.sim_ms),
            ms(plain.sim_ms),
            tailored.rows
        );
    }
    summary(
        "abl1.size_growth_1_to_10_pointers",
        format!("{:.2}x", last_size as f64 / first_size as f64),
    );
}
