//! Sharded scatter-gather scaling — one logical fractured table hash-
//! partitioned across N independent stores (each its own simulated
//! device and 8 MB buffer pool), queried through the shared-watermark
//! top-k scatter-gather path, for N ∈ {1, 2, 4, 8}.
//!
//! The workload is two passes of top-k point PTQs over every primary
//! value. The physics under test:
//!
//! 1. **Watermark-bounded cold reads** — a cold top-k touches each
//!    component for its descent plus a head leaf (O(1) pages per
//!    component), *not* the value's full clustered run. Checked per
//!    shard count against a forced full-run PTQ of the same value.
//! 2. **Partitioned working set** — the single-store table's per-value
//!    touched set (one head leaf per fracture × every value) overflows
//!    one buffer pool, so the second pass re-misses; partitioned across
//!    N stores, each shard's share fits its own pool and the second
//!    pass runs from RAM. Total demand pages over the workload must be
//!    **strictly lower at 4 shards than at 1** — the acceptance gate.
//! 3. **Parallel scatter latency** — shard workers run concurrently on
//!    independent devices, so a query's latency is the *max* of its
//!    per-shard attributed windows while calibration keeps seeing the
//!    *sum*. Over the workload, Σ max (`parallel_ms`) must undercut
//!    Σ sum (`device_ms`, the serial-drain cost) by ≥ 40% at 4 shards.
//! 4. **Pruned cold shards** — on a skewed range layout whose last
//!    shard holds only low-confidence rows, the per-shard `ShardStats`
//!    bounds let every scatter skip *opening* it: the pruned shard's
//!    device sees zero page reads while the answers stay byte-equal to
//!    an exhaustive scatter. Checked at every scale (routing is
//!    deterministic).
//!
//! Emits `BENCH_shard.json` (override the path with
//! `UPI_BENCH_SHARD_JSON`): per shard count, demand pages per pass,
//! prefetched pages, simulated device milliseconds (serial sum and
//! parallel max-composed), the cold top-k-vs-full-run page counts, and
//! the skewed-workload pruning record.
//!
//! Page/latency gates are enforced at `UPI_BENCH_SCALE` ≥ 0.5 (at smoke
//! scales the table fits every pool and the curve flattens by design);
//! the pruning gate is enforced at every scale.

use std::sync::Arc;

use upi::{FracturedConfig, ShardLayout, TableLayout, UpiConfig};
use upi_bench::{banner, header, scale, summary, POOL_BYTES};
use upi_query::{PtqQuery, ShardedDb};
use upi_storage::{DiskConfig, IoStats, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

/// Distinct primary values (each queried twice per workload).
const VALUES: u64 = 24;
/// Fracture events accumulated by the single-store table; N shards
/// auto-flush at the same per-shard threshold, so each ends up with
/// ~1/N of them.
const FRACTURES: usize = 48;
/// Top-k of the workload queries.
const K: usize = 10;

struct Series {
    shards: usize,
    components: usize,
    pass1_pages: u64,
    pass2_pages: u64,
    prefetch_pages: u64,
    device_ms: f64,
    parallel_ms: f64,
    cold_topk_pages: u64,
    full_run_pages: u64,
}

/// The skewed-workload pruning record: 4 range shards, the last holding
/// only low-confidence rows, every primary value queried once.
struct Skew {
    queries: u64,
    shards_skipped: u64,
    pruned_shard_pages: u64,
    answers_match: bool,
}

fn rows(n: usize) -> Vec<Tuple> {
    (0..n as u64)
        .map(|i| {
            // Deterministic per-row confidence in [0.50, 0.95): well above
            // the cutoff, so point runs stream from the clustered heap.
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            let p = 0.50 + (h % 4500) as f64 / 10_000.0;
            Tuple::new(
                TupleId(i),
                1.0,
                vec![
                    Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(224)))),
                    Field::Discrete(DiscretePmf::new(vec![(i % VALUES, p)])),
                ],
            )
        })
        .collect()
}

fn build(tuples: &[Tuple], n_shards: usize, buffer_ops: usize) -> ShardedDb {
    let stores: Vec<Store> = (0..n_shards)
        .map(|_| Store::new(Arc::new(SimDisk::new(DiskConfig::default())), POOL_BYTES))
        .collect();
    let schema = Schema::new(vec![
        ("pad", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ]);
    let mut db = ShardedDb::create(
        stores,
        "shard_scaling",
        schema,
        1,
        TableLayout::FracturedUpi(FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops,
        }),
        ShardLayout::HashTid(n_shards),
    )
    .unwrap();
    // Half bulk-loaded into the main components, half inserted through
    // the auto-flushing buffer — the fracture history under test.
    let half = tuples.len() / 2;
    db.load(&tuples[..half]).unwrap();
    for t in &tuples[half..] {
        db.insert_tuple(t).unwrap();
    }
    db.flush().unwrap();
    db
}

fn go_cold(db: &ShardedDb) {
    for s in db.shards() {
        s.table().store().go_cold();
    }
}

fn disk_stats(db: &ShardedDb) -> Vec<IoStats> {
    db.shards()
        .iter()
        .map(|s| s.table().store().disk.stats())
        .collect()
}

fn device_ms_since(db: &ShardedDb, before: &[IoStats]) -> f64 {
    db.shards()
        .iter()
        .zip(before)
        .map(|(s, b)| s.table().store().disk.stats().since(b).total_ms())
        .sum()
}

fn run_series(tuples: &[Tuple], n_shards: usize, buffer_ops: usize) -> Series {
    let db = build(tuples, n_shards, buffer_ops);
    let components: usize = db
        .shards()
        .iter()
        .map(|s| match s.table().as_fractured() {
            Some(f) => f.n_fractures() + 1,
            None => 1,
        })
        .sum();

    // Cold watermark check: device pages (demand + read-ahead) a cold
    // top-k reads vs. the value's full clustered run. The watermark
    // stops every component at its descent plus a head leaf, so the
    // top-k side must stay O(components), not O(run).
    let topk = |v: u64| PtqQuery::eq(1, v).with_qt(0.5).with_top_k(K);
    let device_reads = |db: &ShardedDb, q: &PtqQuery| {
        go_cold(db);
        let before = disk_stats(db);
        db.query(q).unwrap();
        db.shards()
            .iter()
            .zip(&before)
            .map(|(s, b)| s.table().store().disk.stats().since(b).page_reads)
            .sum::<u64>()
    };
    let cold_topk_pages = device_reads(&db, &topk(0));
    let full_run_pages = device_reads(&db, &PtqQuery::eq(1, 0).with_qt(0.5));

    // The workload: two passes of top-k over every value. Pass 1 is
    // cold; pass 2 re-misses only what the pools could not retain.
    go_cold(&db);
    let before = disk_stats(&db);
    let mut pass_pages = [0u64; 2];
    let mut prefetch_pages = 0u64;
    let mut parallel_ms = 0.0f64;
    for (pass, pages) in pass_pages.iter_mut().enumerate() {
        for v in 0..VALUES {
            let out = db.query(&topk(v)).unwrap();
            let io = out.io.as_ref().expect("scatter reports io");
            *pages += io.misses;
            prefetch_pages += io.readahead;
            // Workers drain shards concurrently: the query's wall-clock
            // cost is the max per-shard window, not their sum.
            parallel_ms += out.latency_ms.expect("scatter reports parallel latency");
            assert_eq!(
                out.rows.len(),
                K,
                "pass {pass}, value {v}: every value holds ≥ {K} qualifying rows"
            );
        }
    }
    let device_ms = device_ms_since(&db, &before);

    Series {
        shards: n_shards,
        components,
        pass1_pages: pass_pages[0],
        pass2_pages: pass_pages[1],
        prefetch_pages,
        device_ms,
        parallel_ms,
        cold_topk_pages,
        full_run_pages,
    }
}

/// Skewed pruning experiment, always at 4 shards: range layout whose
/// last shard stores only confidences ≤ ~0.3, so its `ShardStats`
/// bounds sit strictly below the workload's `qt = 0.5` and every
/// scatter skips opening it. Routing and bounds are deterministic, so
/// this holds at any scale.
fn run_skew(n_rows: usize) -> Skew {
    let quarter = (n_rows / 4).max(1) as u64;
    let layout = ShardLayout::RangeTid(vec![quarter, 2 * quarter, 3 * quarter]);
    let stores: Vec<Store> = (0..4)
        .map(|_| Store::new(Arc::new(SimDisk::new(DiskConfig::default())), POOL_BYTES))
        .collect();
    let schema = Schema::new(vec![
        ("pad", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ]);
    let mut db = ShardedDb::create(
        stores,
        "shard_skew",
        schema,
        1,
        TableLayout::Upi(UpiConfig::default()),
        layout,
    )
    .unwrap();
    let tuples: Vec<Tuple> = (0..n_rows as u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
            // The last quarter of the id range — shard 3 — holds only
            // low-confidence alternatives; the rest mirror `rows()`.
            let p = if i >= 3 * quarter {
                0.05 + (h % 2500) as f64 / 10_000.0
            } else {
                0.50 + (h % 4500) as f64 / 10_000.0
            };
            Tuple::new(
                TupleId(i),
                1.0,
                vec![
                    Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(224)))),
                    Field::Discrete(DiscretePmf::new(vec![(i % VALUES, p)])),
                ],
            )
        })
        .collect();
    db.load(&tuples).unwrap();
    assert!(
        db.stats()[3].max_conf() < 0.5,
        "the skewed shard's bound must sit below qt"
    );

    let topk = |v: u64| PtqQuery::eq(1, v).with_qt(0.5).with_top_k(K);
    let fp = |out: &upi_query::QueryOutput| -> Vec<(u64, u64)> {
        out.rows
            .iter()
            .map(|r| (r.tuple.id.0, r.confidence.to_bits()))
            .collect()
    };

    // Exhaustive baseline first, then the pruned run from cold.
    db.set_pruning(false);
    go_cold(&db);
    let baseline: Vec<_> = (0..VALUES)
        .map(|v| fp(&db.query(&topk(v)).unwrap()))
        .collect();

    db.set_pruning(true);
    go_cold(&db);
    let skipped_before = db.shards_skipped();
    let cold_before = db.shards()[3].table().store().disk.stats();
    let mut answers_match = true;
    for v in 0..VALUES {
        answers_match &= fp(&db.query(&topk(v)).unwrap()) == baseline[v as usize];
    }
    Skew {
        queries: VALUES,
        shards_skipped: db.shards_skipped() - skipped_before,
        pruned_shard_pages: db.shards()[3]
            .table()
            .store()
            .disk
            .stats()
            .since(&cold_before)
            .page_reads,
        answers_match,
    }
}

fn write_json(series: &[Series], skew: &Skew, gate_enforced: bool) {
    let json_path = std::env::var("UPI_BENCH_SHARD_JSON").unwrap_or_else(|_| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_shard.json"))
            .unwrap_or_else(|_| "BENCH_shard.json".to_string())
    });
    let one = series.iter().find(|s| s.shards == 1).unwrap();
    let four = series.iter().find(|s| s.shards == 4).unwrap();
    let mut json = String::from("{\n  \"series\": [\n");
    for (i, s) in series.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"components\": {}, \"demand_pages\": {}, \
             \"pass1_pages\": {}, \"pass2_pages\": {}, \"prefetch_pages\": {}, \
             \"device_ms\": {:.1}, \"parallel_ms\": {:.1}, \
             \"parallel_vs_serial\": {:.4}, \
             \"cold_topk_pages\": {}, \"full_run_pages\": {}}}{}\n",
            s.shards,
            s.components,
            s.pass1_pages + s.pass2_pages,
            s.pass1_pages,
            s.pass2_pages,
            s.prefetch_pages,
            s.device_ms,
            s.parallel_ms,
            s.parallel_ms / s.device_ms.max(1e-9),
            s.cold_topk_pages,
            s.full_run_pages,
            if i + 1 < series.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let pages = |s: &Series| s.pass1_pages + s.pass2_pages;
    json.push_str(&format!(
        "  \"skew\": {{\"shards\": 4, \"queries\": {}, \"shards_skipped\": {}, \
         \"pruned_shard_pages\": {}, \"answers_match\": {}}},\n",
        skew.queries, skew.shards_skipped, skew.pruned_shard_pages, skew.answers_match,
    ));
    json.push_str(&format!(
        "  \"summary\": {{\"scale\": {}, \"gate_enforced\": {}, \
         \"pages_4_shards\": {}, \"pages_1_shard\": {}, \
         \"four_shards_fewer_pages\": {}, \
         \"device_ms_4_vs_1\": {:.4}, \
         \"parallel_vs_serial_4_shards\": {:.4}, \
         \"worst_cold_topk_vs_full_run\": {:.4}}}\n",
        scale(),
        gate_enforced,
        pages(four),
        pages(one),
        pages(four) < pages(one),
        four.device_ms / one.device_ms.max(1e-9),
        four.parallel_ms / four.device_ms.max(1e-9),
        series
            .iter()
            .map(|s| s.cold_topk_pages as f64 / (s.full_run_pages as f64).max(1.0))
            .fold(0.0f64, f64::max),
    ));
    json.push('}');
    std::fs::write(&json_path, json).expect("write BENCH_shard.json");
    println!("# wrote {json_path}");
}

fn main() {
    banner(
        "shard_scaling",
        "scatter-gather top-k over N partitioned stores",
        "demand pages, serial vs parallel device-ms, and pruned cold shards",
    );
    let s = scale();
    let n_rows = ((80_000.0 * s) as usize).max(2_000);
    // Per-shard auto-flush threshold sized so the SINGLE-store build
    // accumulates `FRACTURES` fracture events; N shards split the same
    // insert stream, so each shard ends up with ~FRACTURES/N of them.
    let buffer_ops = ((n_rows / 2) / FRACTURES).max(10);
    let tuples = rows(n_rows);

    header(&[
        "shards",
        "components",
        "pass1_pages",
        "pass2_pages",
        "demand_pages",
        "prefetch",
        "device_ms",
        "parallel_ms",
        "cold_topk",
        "full_run",
    ]);
    let mut series = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let rec = run_series(&tuples, n, buffer_ops);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{}\t{}",
            rec.shards,
            rec.components,
            rec.pass1_pages,
            rec.pass2_pages,
            rec.pass1_pages + rec.pass2_pages,
            rec.prefetch_pages,
            rec.device_ms,
            rec.parallel_ms,
            rec.cold_topk_pages,
            rec.full_run_pages
        );
        series.push(rec);
    }

    let one = series.iter().find(|s| s.shards == 1).unwrap();
    let four = series.iter().find(|s| s.shards == 4).unwrap();
    let pages = |s: &Series| s.pass1_pages + s.pass2_pages;
    summary("pages_1_shard", pages(one));
    summary("pages_4_shards", pages(four));
    summary(
        "device_ms_4_vs_1",
        format!("{:.3}", four.device_ms / one.device_ms.max(1e-9)),
    );
    summary(
        "parallel_vs_serial_4_shards",
        format!("{:.3}", four.parallel_ms / four.device_ms.max(1e-9)),
    );

    // The pruning record is deterministic (static bounds, fixed
    // routing): gate it at every scale, smoke runs included.
    let skew = run_skew(n_rows);
    summary("skew_shards_skipped", skew.shards_skipped);
    summary("skew_pruned_shard_pages", skew.pruned_shard_pages);
    assert!(
        skew.shards_skipped > 0,
        "the skewed workload must skip the cold shard at least once"
    );
    assert!(
        skew.shards_skipped >= skew.queries,
        "every skewed query must statically skip the cold shard          ({} skips over {} queries)",
        skew.shards_skipped,
        skew.queries
    );
    assert_eq!(
        skew.pruned_shard_pages, 0,
        "the pruned shard must never be opened"
    );
    assert!(
        skew.answers_match,
        "pruned scatters must stay byte-equal to exhaustive ones"
    );

    let gate_enforced = s >= 0.5;
    if gate_enforced {
        assert!(
            pages(four) < pages(one),
            "acceptance gate: top-k over 4 shards must read strictly fewer \
             total demand pages than 1 shard ({} vs {})",
            pages(four),
            pages(one)
        );
        assert!(
            four.parallel_ms <= 0.6 * four.device_ms,
            "acceptance gate: at 4 shards the parallel scatter latency              (max-composed, {:.1} ms) must be ≤ 0.6x the serial drain              ({:.1} ms)",
            four.parallel_ms,
            four.device_ms
        );
        for rec in &series {
            assert!(
                rec.cold_topk_pages < rec.full_run_pages,
                "{} shards: a cold watermark-bounded top-k ({} pages) must \
                 read less than the value's full run ({} pages)",
                rec.shards,
                rec.cold_topk_pages,
                rec.full_run_pages
            );
        }
        summary(
            "gate",
            "PASS (fewer pages and ≤ 0.6x serial latency at 4 shards)",
        );
    } else {
        summary(
            "gate",
            format!("page/latency gates skipped at scale {s} (< 0.5)"),
        );
    }
    write_json(&series, &skew, gate_enforced);
}
