//! Cost-driven background maintenance — scheduled incremental merge
//! steps vs. the two extremes, over a fig-9-style deterioration
//! workload.
//!
//! Three identical fractured tables absorb the same batched DML stream
//! (each batch: insert 2.5 % of the initial table, delete 0.5 % of live
//! tuples, flush one fracture, run maintenance, then serve a cold
//! query pass). The pass is measured *after* the arm's maintenance ran
//! — steady state means "what queries cost under this maintenance
//! regime", not "queries racing a just-flushed fracture". The arms
//! differ only in the maintenance step:
//!
//! * **never** — the fracture chain grows unboundedly; every query
//!   pays the accumulating per-component opens.
//! * **eager** — a full [`merge`](upi_query::UncertainDb::merge) after
//!   every batch; queries always see one component, maintenance
//!   rewrites the whole table every time.
//! * **scheduled** — [`maintenance_tick`](upi_query::UncertainDb::maintenance_tick)
//!   after every batch: bounded incremental steps the cost model
//!   prices against observed traffic.
//!
//! Acceptance gates (enforced at `UPI_BENCH_SCALE` ≥ 0.5):
//!
//! 1. scheduled steady-state query device-ms ≤ 1.15× the freshly-merged
//!    (eager) steady state — incremental maintenance keeps queries near
//!    the fully-merged floor;
//! 2. scheduled total maintenance device-ms strictly below eager's —
//!    it gets there without paying full-merge rewrites;
//! 3. never-merge's steady-state query pass is strictly worse than
//!    both maintained arms.
//!
//! Emits `BENCH_maintenance.json` (override the path with
//! `UPI_BENCH_MAINTENANCE_JSON`): per arm, the per-batch query-pass
//! device-ms and maintenance device-ms series, end-of-run component
//! counts, and the scheduled session's maintenance counters.

use upi::{FracturedConfig, TableLayout, UpiConfig};
use upi_bench::{banner, fresh_store, header, scale, summary};
use upi_query::{PtqQuery, UncertainDb};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

/// Distinct primary values; every pass queries each once, cold. Few
/// values → long clustered runs, so the pass cost is dominated by data
/// transfer (the floor) rather than per-component fixed costs.
const VALUES: u64 = 4;
/// DML batches (each flushes one fracture in the never arm).
const BATCHES: usize = 8;
const QT: f64 = 0.5;

fn schema() -> Schema {
    Schema::new(vec![
        ("pad", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ])
}

fn tuple(i: u64, round: u64) -> Tuple {
    let h = i
        .wrapping_add(round.wrapping_mul(0xA076_1D64_78BD_642F))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        >> 40;
    let p = 0.50 + (h % 4500) as f64 / 10_000.0;
    // Wide rows: at the gated scale the main component's rewrite must
    // exceed the policy's step budget, or "incremental" degenerates to a
    // full merge per batch and the three arms stop differing.
    Tuple::new(
        TupleId(i),
        1.0,
        vec![
            Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(400)))),
            Field::Discrete(DiscretePmf::new(vec![(i % VALUES, p)])),
        ],
    )
}

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Never,
    Eager,
    Scheduled,
}

struct Series {
    name: &'static str,
    query_ms: Vec<f64>,
    maint_ms: Vec<f64>,
    components: usize,
    merge_steps: u64,
    components_compacted: u64,
}

fn run_arm(arm: Arm, n_rows: usize) -> Series {
    let store = fresh_store();
    let mut db = UncertainDb::create(
        store.clone(),
        "maint",
        schema(),
        1,
        TableLayout::FracturedUpi(FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops: 0,
        }),
    )
    .unwrap();
    let initial: Vec<Tuple> = (0..n_rows as u64).map(|i| tuple(i, 0)).collect();
    db.load(&initial).unwrap();
    if arm == Arm::Scheduled {
        let mut policy = db.maintenance_policy();
        // The default 2 s step budget targets interactive sessions and
        // can never afford folding main back together at this table
        // size — and a chain that can never fold never returns to the
        // sequential floor. An operator running ticks from a dedicated
        // maintenance slot sizes the budget to that slot instead; the
        // *economics* (profitability over the horizon), not the budget,
        // are what defer the fold until fracture mass amortizes it.
        policy.step_budget_ms = 50_000.0;
        policy.mean_run_fraction = 1.0 / VALUES as f64;
        db.set_maintenance_policy(policy);
    }

    let mut live: Vec<u64> = (0..n_rows as u64).collect();
    let mut next_id = n_rows as u64;
    let mut rng_state = 0x5EEDu64;
    let mut next_rand = move |n: usize| {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((rng_state >> 33) as usize) % n
    };

    let mut query_ms = Vec::new();
    let mut maint_ms = Vec::new();
    for batch in 0..BATCHES {
        // Deterioration step: 2.5% inserts, 0.5% deletes, one fracture.
        let n_ins = n_rows / 40;
        for _ in 0..n_ins {
            db.insert_tuple(&tuple(next_id, 1 + batch as u64)).unwrap();
            live.push(next_id);
            next_id += 1;
        }
        for _ in 0..live.len() / 200 {
            let idx = next_rand(live.len());
            let id = live.swap_remove(idx);
            // Reconstruct: ids < n_rows are round 0, later ids carry the
            // batch they were inserted in. Track rounds per id instead of
            // cloning tuples: id -> round is derivable from the id range.
            let round = if id < n_rows as u64 {
                0
            } else {
                1 + (id - n_rows as u64) / n_ins as u64
            };
            db.delete(&tuple(id, round)).unwrap();
        }
        db.flush().unwrap();

        // Maintenance, per arm. The scheduled policy prices its steps
        // against the traffic observed over the previous passes (the
        // batch-0 tick sees no history yet and declines — realistic for
        // a freshly opened session).
        let before = store.disk.stats();
        match arm {
            Arm::Never => {}
            Arm::Eager => db.merge().unwrap(),
            Arm::Scheduled => {
                for _ in 0..8 {
                    if db.maintenance_tick().unwrap().is_none() {
                        break;
                    }
                }
            }
        }
        maint_ms.push(store.disk.stats().since(&before).total_ms());

        // The cold query pass: every value once, against whatever
        // structure this arm's maintenance left behind. This is also
        // the traffic the scheduled arm's policy observes.
        store.go_cold();
        let before = store.disk.stats();
        for v in 0..VALUES {
            db.query(&PtqQuery::eq(1, v).with_qt(QT)).unwrap();
        }
        query_ms.push(store.disk.stats().since(&before).total_ms());
    }

    let components = db
        .table()
        .as_fractured()
        .map(|f| f.n_fractures() + 1)
        .unwrap_or(1);
    if std::env::var("UPI_BENCH_DEBUG").is_ok() {
        if let Some(f) = db.table().as_fractured() {
            eprintln!(
                "arm {:?} component_bytes: {:?}",
                arm as u8,
                f.component_bytes()
            );
        }
        let q = PtqQuery::eq(1, 0).with_qt(QT);
        eprintln!("{}", db.explain(&q).unwrap());
    }
    let m = db.metrics();
    Series {
        name: match arm {
            Arm::Never => "never",
            Arm::Eager => "eager",
            Arm::Scheduled => "scheduled",
        },
        query_ms,
        maint_ms,
        components,
        merge_steps: m.merge_steps,
        components_compacted: m.components_compacted,
    }
}

/// Steady state: the mean of the last two query passes.
fn steady(s: &Series) -> f64 {
    let n = s.query_ms.len();
    (s.query_ms[n - 1] + s.query_ms[n - 2]) / 2.0
}

fn total_maint(s: &Series) -> f64 {
    s.maint_ms.iter().sum()
}

fn series_json(s: &Series) -> String {
    let fmt = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.1}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "    {{\"arm\": \"{}\", \"query_ms\": [{}], \"maintenance_ms\": [{}], \
         \"steady_query_ms\": {:.1}, \"total_maintenance_ms\": {:.1}, \
         \"final_components\": {}, \"merge_steps\": {}, \
         \"components_compacted\": {}}}",
        s.name,
        fmt(&s.query_ms),
        fmt(&s.maint_ms),
        steady(s),
        total_maint(s),
        s.components,
        s.merge_steps,
        s.components_compacted,
    )
}

fn write_json(arms: &[Series], gate_enforced: bool) {
    let json_path = std::env::var("UPI_BENCH_MAINTENANCE_JSON").unwrap_or_else(|_| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_maintenance.json"))
            .unwrap_or_else(|_| "BENCH_maintenance.json".to_string())
    });
    let by = |n: &str| arms.iter().find(|s| s.name == n).unwrap();
    let (never, eager, sched) = (by("never"), by("eager"), by("scheduled"));
    let mut json = String::from("{\n  \"arms\": [\n");
    for (i, s) in arms.iter().enumerate() {
        json.push_str(&series_json(s));
        json.push_str(if i + 1 < arms.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"summary\": {{\"scale\": {}, \"gate_enforced\": {}, \
         \"scheduled_vs_merged_steady\": {:.4}, \
         \"scheduled_vs_eager_maintenance\": {:.4}, \
         \"never_vs_scheduled_steady\": {:.4}, \
         \"never_vs_eager_steady\": {:.4}}}\n",
        scale(),
        gate_enforced,
        steady(sched) / steady(eager).max(1e-9),
        total_maint(sched) / total_maint(eager).max(1e-9),
        steady(never) / steady(sched).max(1e-9),
        steady(never) / steady(eager).max(1e-9),
    ));
    json.push('}');
    std::fs::write(&json_path, json).expect("write BENCH_maintenance.json");
    println!("# wrote {json_path}");
}

fn main() {
    banner(
        "maintenance",
        "never vs eager-full-merge vs scheduled-incremental maintenance",
        "scheduled stays near the merged floor at a fraction of eager's device time",
    );
    let s = scale();
    let n_rows = ((250_000.0 * s) as usize).max(2_000);

    let arms: Vec<Series> = [Arm::Never, Arm::Eager, Arm::Scheduled]
        .into_iter()
        .map(|a| run_arm(a, n_rows))
        .collect();

    header(&[
        "batch",
        "never_ms",
        "eager_ms",
        "scheduled_ms",
        "sched_maint_ms",
    ]);
    for b in 0..BATCHES {
        println!(
            "{b}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            arms[0].query_ms[b], arms[1].query_ms[b], arms[2].query_ms[b], arms[2].maint_ms[b],
        );
    }

    let by = |n: &str| arms.iter().find(|s| s.name == n).unwrap();
    let (never, eager, sched) = (by("never"), by("eager"), by("scheduled"));
    summary("never_steady_query_ms", format!("{:.1}", steady(never)));
    summary("eager_steady_query_ms", format!("{:.1}", steady(eager)));
    summary("scheduled_steady_query_ms", format!("{:.1}", steady(sched)));
    summary("eager_maintenance_ms", format!("{:.1}", total_maint(eager)));
    summary(
        "scheduled_maintenance_ms",
        format!("{:.1}", total_maint(sched)),
    );
    summary("scheduled_merge_steps", sched.merge_steps);
    summary("never_final_components", never.components);
    summary("scheduled_final_components", sched.components);

    let gate_enforced = s >= 0.5;
    if gate_enforced {
        assert!(
            sched.merge_steps > 0,
            "the scheduled arm must actually run incremental steps"
        );
        assert!(
            steady(sched) <= 1.15 * steady(eager),
            "acceptance gate: scheduled steady-state query pass ({:.1} ms) \
             must stay within 1.15x the freshly-merged one ({:.1} ms)",
            steady(sched),
            steady(eager)
        );
        assert!(
            total_maint(sched) < total_maint(eager),
            "acceptance gate: scheduled maintenance ({:.1} ms) must cost \
             strictly less device time than eager full merges ({:.1} ms)",
            total_maint(sched),
            total_maint(eager)
        );
        assert!(
            steady(never) > steady(sched) && steady(never) > steady(eager),
            "acceptance gate: never-merge ({:.1} ms) must be strictly worse \
             than scheduled ({:.1} ms) and eager ({:.1} ms)",
            steady(never),
            steady(sched),
            steady(eager)
        );
        summary(
            "gate",
            "PASS (scheduled ≤ 1.15x merged floor, cheaper than eager, never-merge worst)",
        );
    } else {
        summary("gate", format!("gates skipped at scale {s} (< 0.5)"));
    }
    write_json(&arms, gate_enforced);
}
