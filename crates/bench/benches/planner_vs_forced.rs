//! Planner validation — each figure query (4–8) executed under the
//! cost-based planner and under every forced access path.
//!
//! For every query point this prints the planner's chosen path, its
//! measured simulated runtime, and the runtime of each forced candidate;
//! it asserts that
//!
//! 1. every access path returns the **same result set**, and
//! 2. the planner-chosen plan is within **10%** of the best forced path
//!    (plus a small absolute slack for the sub-millisecond regime).
//!
//! This is the acceptance gate for the `upi-query` subsystem: the §6 cost
//! models, fed with live statistics, must actually pick the access path
//! the simulated disk agrees is fastest.

use upi_bench::setups::{author_setup, cartel_setup, publication_setup};
use upi_bench::{banner, header, measure_cold, ms, summary};
use upi_query::{Catalog, PhysicalPlan, PtqQuery, QueryOutput};
use upi_workloads::cartel::observation_fields;
use upi_workloads::dblp::{author_fields, publication_fields};

/// Comparable fingerprint of an output: sorted `(tid, confidence)` rows or
/// the group table.
fn fingerprint(out: &QueryOutput) -> Vec<(u64, u64)> {
    match &out.groups {
        Some(g) => g.clone(),
        None => {
            let mut rows: Vec<(u64, u64)> = out
                .rows
                .iter()
                .map(|r| (r.tuple.id.0, (r.confidence * 1e9).round() as u64))
                .collect();
            rows.sort_unstable();
            rows
        }
    }
}

/// Execute the planner's choice and each forced candidate cold; check
/// agreement and the 10% optimality bound. Returns
/// `(chosen_ms, best_forced_ms)`.
fn run_point(
    label: &str,
    q: &PtqQuery,
    catalog: &Catalog<'_>,
    store: &upi_storage::Store,
) -> (f64, f64) {
    let plan = q.plan(catalog).expect("planner must find a path");
    if std::env::var("UPI_PLANNER_EXPLAIN").is_ok() {
        eprintln!("--- {label}\n{}", plan.explain());
    }
    let chosen_label = plan.path().label();

    let mut chosen_out = None;
    let chosen = measure_cold(store, || {
        let out = plan.execute(catalog).unwrap();
        let n = out.len();
        chosen_out = Some(out);
        n
    });
    let reference = fingerprint(&chosen_out.expect("measured closure ran"));

    let mut best_forced = f64::INFINITY;
    let mut best_label = String::new();
    let mut cols = vec![label.to_string(), chosen_label.clone(), ms(chosen.sim_ms)];
    for cand in &plan.candidates {
        let forced = PhysicalPlan {
            query: q.clone(),
            candidates: vec![cand.clone()],
        };
        let mut forced_out = None;
        let m = measure_cold(store, || {
            let out = forced.execute(catalog).unwrap();
            let n = out.len();
            forced_out = Some(out);
            n
        });
        assert_eq!(
            fingerprint(&forced_out.expect("measured closure ran")),
            reference,
            "{label}: path {} disagrees with planner result",
            cand.path.label()
        );
        if m.sim_ms < best_forced {
            best_forced = m.sim_ms;
            best_label = cand.path.label();
        }
        cols.push(format!("{}={}", cand.path.label(), ms(m.sim_ms)));
    }
    println!("{}", cols.join("\t"));

    // 10% relative + 2 simulated ms absolute slack (sub-ms costs round in
    // the I/O ledger).
    assert!(
        chosen.sim_ms <= best_forced * 1.10 + 2.0,
        "{label}: planner chose {chosen_label} ({:.1} ms) but {best_label} is faster ({:.1} ms)",
        chosen.sim_ms,
        best_forced
    );
    (chosen.sim_ms, best_forced)
}

fn main() {
    let mut worst_ratio = 1.0f64;
    let mut track = |(chosen, best): (f64, f64)| {
        if best > 0.0 {
            worst_ratio = worst_ratio.max(chosen / best);
        }
    };

    banner(
        "Planner",
        "planner-chosen plan vs every forced access path (Queries 1-5)",
        "chosen within 10% of the best forced path at every point",
    );

    // --- Query 1 (fig04): point PTQ on the clustered attribute ---------
    {
        let s = author_setup(0.1);
        let mit = s.data.popular_institution();
        let catalog = Catalog::new(s.store.disk.config())
            .with_upi(&s.upi)
            .with_heap(&s.heap)
            .with_pii(&s.pii);
        header(&["query1", "chosen", "chosen_ms", "forced..."]);
        for qt10 in [1, 3, 5, 7, 9] {
            let qt = qt10 as f64 / 10.0;
            let q = PtqQuery::eq(author_fields::INSTITUTION, mit).with_qt(qt);
            track(run_point(&format!("q1@{qt:.1}"), &q, &catalog, &s.store));
        }
    }

    // --- Queries 2-3 (fig05/fig06): aggregates, primary + secondary ----
    {
        let s = publication_setup(0.1);
        let mit = s.data.popular_institution();
        let japan = s.data.query_country();
        let catalog = Catalog::new(s.store.disk.config())
            .with_upi(&s.upi)
            .with_heap(&s.heap)
            .with_pii(&s.pii_inst)
            .with_pii(&s.pii_country);
        header(&["query2", "chosen", "chosen_ms", "forced..."]);
        for qt10 in [1, 5, 9] {
            let qt = qt10 as f64 / 10.0;
            let q = PtqQuery::eq(publication_fields::INSTITUTION, mit)
                .with_qt(qt)
                .with_group_count(publication_fields::JOURNAL);
            track(run_point(&format!("q2@{qt:.1}"), &q, &catalog, &s.store));
        }
        header(&["query3", "chosen", "chosen_ms", "forced..."]);
        for qt10 in [1, 5, 9] {
            let qt = qt10 as f64 / 10.0;
            let q = PtqQuery::eq(publication_fields::COUNTRY, japan)
                .with_qt(qt)
                .with_group_count(publication_fields::JOURNAL);
            track(run_point(&format!("q3@{qt:.1}"), &q, &catalog, &s.store));
        }
    }

    // --- Queries 4-5 (fig07/fig08): continuous circle + segment --------
    {
        let s = cartel_setup();
        let (qx, qy) = s.data.query_center();
        let seg = s.data.busy_segment();
        let catalog = Catalog::new(s.store.disk.config())
            .with_cupi(&s.cupi)
            .with_cont_secondary(&s.seg_on_cupi)
            .with_heap(&s.heap)
            .with_utree(&s.utree)
            .with_pii(&s.seg_on_heap);
        header(&["query4", "chosen", "chosen_ms", "forced..."]);
        for step in [2, 5, 10] {
            let radius = 100.0 * step as f64;
            let q = PtqQuery::circle(observation_fields::LOCATION, qx, qy, radius).with_qt(0.5);
            track(run_point(
                &format!("q4@r{radius:.0}"),
                &q,
                &catalog,
                &s.store,
            ));
        }
        header(&["query5", "chosen", "chosen_ms", "forced..."]);
        for qt10 in [1, 4, 8] {
            let qt = qt10 as f64 / 10.0;
            let q = PtqQuery::eq(observation_fields::SEGMENT, seg).with_qt(qt);
            track(run_point(&format!("q5@{qt:.1}"), &q, &catalog, &s.store));
        }
    }

    summary(
        "planner.worst_chosen_vs_best_forced",
        format!("{worst_ratio:.3}x"),
    );
    summary("planner.within_10pct", worst_ratio <= 1.10);
}
