//! Planner validation — each figure query (4–8) executed under the
//! cost-based planner and under every forced access path, **cold and
//! calibrated**.
//!
//! For every query point this prints the planner's chosen path, its
//! measured simulated runtime, and the runtime of each forced candidate.
//! Each figure setup runs twice:
//!
//! 1. **cold** — the uncalibrated cost model prices the candidates; every
//!    forced execution's `(estimated, observed)` pair is recorded into a
//!    `CalibrationStore` (the same feedback `UncertainDb` collects
//!    automatically in a session);
//! 2. **calibrated** — after one bounded `CostModel::refit` pass, the
//!    same points are re-planned and re-measured with the refit
//!    coefficients.
//!
//! Asserted, per point:
//!
//! 1. every access path returns the **same result set** (both passes),
//! 2. the **calibrated** chosen plan is within **10%** of the best forced
//!    path (plus a small absolute slack for the sub-millisecond regime) —
//!    this is the acceptance gate;
//! 3. the cold chosen plan stays within a loose 25% backstop (the §6
//!    models must remain sane before any feedback), and
//! 4. at scale 0.05 the known q3@0.5 crossover miss (cold ≈ 1.10x, see
//!    ROADMAP) closes to ≤ 1.05x after the calibration pass.
//!
//! A machine-readable `BENCH_planner.json` is written for the
//! perf-trajectory tooling (override the path with
//! `UPI_BENCH_PLANNER_JSON`): per-point **cold and calibrated**
//! chosen/best-forced ratios, the refit scales per path kind, plus two
//! prefetch-hint experiments — a clustered range plan (one hinted run)
//! and a fractured range plan over three components (one hint per
//! component), each executed hinted (as planned) and with the hints
//! stripped, with the buffer-pool page/miss win recorded.

use upi::{FracturedConfig, FracturedUpi, UpiConfig};
use upi_bench::setups::{author_setup, cartel_setup, publication_setup};
use upi_bench::{banner, header, measure_cold, ms, scale, summary};
use upi_query::cost::N_PATH_KINDS;
use upi_query::{
    AccessPath, CalibrationStore, Catalog, CostModel, MetricsRegistry, PathKind, PhysicalPlan,
    PtqQuery, QueryOutput,
};
use upi_storage::{DiskConfig, PoolCounters};
use upi_workloads::cartel::observation_fields;
use upi_workloads::dblp::{author_fields, publication_fields};

/// Relative slack of the calibrated acceptance gate.
const CAL_GATE: f64 = 1.10;
/// Loose backstop for the cold (uncalibrated) pass.
const COLD_GATE: f64 = 1.25;
/// Absolute slack, simulated ms (sub-ms costs round in the I/O ledger).
const ABS_SLACK_MS: f64 = 2.0;

/// One per-point record.
struct CaseRecord {
    name: String,
    chosen: String,
    chosen_ms: f64,
    best_forced: String,
    best_forced_ms: f64,
}

impl CaseRecord {
    fn ratio(&self) -> f64 {
        if self.best_forced_ms > 0.0 {
            self.chosen_ms / self.best_forced_ms
        } else {
            1.0
        }
    }
}

/// One prefetch-hint experiment's measurements (single-run or
/// fracture-parallel multi-run).
struct HintRecord {
    query: String,
    path: String,
    /// Number of hinted runs the plan carries (1, or one per component).
    runs: usize,
    /// Estimated pages across every hinted run.
    est_run_pages: usize,
    hinted: PoolCounters,
    unhinted: PoolCounters,
}

/// Comparable fingerprint of an output: sorted `(tid, confidence)` rows or
/// the group table.
fn fingerprint(out: &QueryOutput) -> Vec<(u64, u64)> {
    match &out.groups {
        Some(g) => g.clone(),
        None => {
            let mut rows: Vec<(u64, u64)> = out
                .rows
                .iter()
                .map(|r| (r.tuple.id.0, (r.confidence * 1e9).round() as u64))
                .collect();
            rows.sort_unstable();
            rows
        }
    }
}

/// Execute the planner's choice and each forced candidate cold; check
/// agreement and the optimality bound. When `samples` is given (the cold
/// pass), every forced execution feeds the calibration store.
fn run_point(
    label: &str,
    q: &PtqQuery,
    catalog: &Catalog<'_>,
    store: &upi_storage::Store,
    mut samples: Option<&mut CalibrationStore>,
    max_ratio: f64,
    metrics: &mut MetricsRegistry,
) -> CaseRecord {
    let plan = q.plan(catalog).expect("planner must find a path");
    if std::env::var("UPI_PLANNER_EXPLAIN").is_ok() {
        eprintln!("--- {label}\n{}", plan.explain());
    }
    let chosen_label = plan.path().label();

    let mut chosen_out = None;
    let chosen = measure_cold(store, || {
        let out = plan.execute(catalog).unwrap();
        let n = out.len();
        chosen_out = Some(out);
        n
    });
    let chosen_out = chosen_out.expect("measured closure ran");

    // Every chosen execution feeds the bench-wide metrics registry (the
    // same registry `UncertainDb` owns per session) — the snapshot
    // becomes BENCH_metrics.json.
    let cost = &plan.candidates[0].cost;
    metrics.record_query(
        cost.kind,
        plan.est_ms(),
        chosen.sim_ms,
        chosen_out.len() as u64,
        chosen_out.io.as_ref(),
    );

    // EXPLAIN ANALYZE coverage: every figure point's chosen plan must
    // render an executed span tree.
    let analyze = plan.render_analyze(&chosen_out);
    assert!(
        analyze.contains("trace ("),
        "{label}: render_analyze must include the span tree:\n{analyze}"
    );
    if std::env::var("UPI_PLANNER_EXPLAIN").is_ok() {
        eprintln!("--- {label} (analyze)\n{analyze}");
    }

    let reference = fingerprint(&chosen_out);

    let mut best_forced = f64::INFINITY;
    let mut best_label = String::new();
    let mut cols = vec![label.to_string(), chosen_label.clone(), ms(chosen.sim_ms)];
    for cand in &plan.candidates {
        let forced = PhysicalPlan {
            query: q.clone(),
            candidates: vec![cand.clone()],
        };
        let mut forced_out = None;
        let m = measure_cold(store, || {
            let out = forced.execute(catalog).unwrap();
            let n = out.len();
            forced_out = Some(out);
            n
        });
        assert_eq!(
            fingerprint(&forced_out.expect("measured closure ran")),
            reference,
            "{label}: path {} disagrees with planner result",
            cand.path.label()
        );
        if let Some(s) = samples.as_deref_mut() {
            // The forced execution IS the observed side of this
            // candidate's estimate: same plan, same cold protocol.
            s.record(
                cand.cost.kind,
                cand.cost.fixed_ms,
                cand.cost.dominant_ms,
                m.sim_ms,
            );
        }
        if m.sim_ms < best_forced {
            best_forced = m.sim_ms;
            best_label = cand.path.label();
        }
        cols.push(format!("{}={}", cand.path.label(), ms(m.sim_ms)));
    }
    println!("{}", cols.join("\t"));

    assert!(
        chosen.sim_ms <= best_forced * max_ratio + ABS_SLACK_MS,
        "{label}: planner chose {chosen_label} ({:.1} ms) but {best_label} is faster ({:.1} ms; gate {max_ratio:.2}x)",
        chosen.sim_ms,
        best_forced
    );
    CaseRecord {
        name: label.to_string(),
        chosen: chosen_label,
        chosen_ms: chosen.sim_ms,
        best_forced: best_label,
        best_forced_ms: best_forced,
    }
}

/// A prefetch-hint experiment: the plan for `want_path`, executed cold
/// as planned (hints armed — one per run, so a fracture-parallel path
/// arms one per component) and again with every hint stripped. Same
/// plan, same rows — the only difference is whether the buffer pool
/// learns each run from the planner or from two adjacent misses, so the
/// miss delta is exactly the hints' contribution.
fn run_hint_experiment(
    q: &PtqQuery,
    label: &str,
    want_path: &AccessPath,
    catalog: &Catalog<'_>,
    store: &upi_storage::Store,
) -> HintRecord {
    let plan = q.plan(catalog).expect("planner must find a path");
    let cand = plan
        .candidates
        .iter()
        .find(|c| &c.path == want_path)
        .expect("requested path must be enumerated");
    assert!(
        !cand.hints.is_empty(),
        "{} must carry prefetch hints",
        cand.path.label()
    );
    let runs = cand.hints.len();
    let est_run_pages: usize = cand.hints.iter().map(|h| h.est_run_pages).sum();

    let measure = |strip_hints: bool| -> (PoolCounters, usize) {
        let mut cand = cand.clone();
        if strip_hints {
            cand.hints.clear();
        }
        let forced = PhysicalPlan {
            query: q.clone(),
            candidates: vec![cand],
        };
        store.go_cold();
        let before = store.pool.counters();
        let rows = forced.execute(catalog).unwrap().len();
        (store.pool.counters().since(&before), rows)
    };
    let (hinted, hinted_rows) = measure(false);
    let (unhinted, unhinted_rows) = measure(true);
    assert_eq!(hinted_rows, unhinted_rows, "hints must not change results");
    assert_eq!(
        hinted.hinted_runs, runs as u64,
        "every per-run hint must arm: {hinted}"
    );
    assert!(
        hinted.misses < unhinted.misses,
        "hint-armed read-ahead must cut demand misses: {hinted} vs {unhinted}"
    );
    println!(
        "{label}\t{} run(s)\thinted: {} pages ({} misses)\tunhinted: {} pages ({} misses)",
        runs,
        hinted.pages_read(),
        hinted.misses,
        unhinted.pages_read(),
        unhinted.misses
    );
    HintRecord {
        query: label.to_string(),
        path: cand.path.label(),
        runs,
        est_run_pages,
        hinted,
        unhinted,
    }
}

fn counters_json(c: &PoolCounters) -> String {
    format!(
        "{{\"pages_read\": {}, \"misses\": {}, \"readahead\": {}, \"readahead_hits\": {}}}",
        c.pages_read(),
        c.demand_pages(),
        c.sequential_pages(),
        c.readahead_hits
    )
}

fn hint_json(h: &HintRecord) -> String {
    format!(
        "{{\"query\": \"{}\", \"path\": \"{}\", \"runs\": {}, \"est_run_pages\": {}, \
         \"hinted\": {}, \"unhinted\": {}}}",
        h.query,
        h.path,
        h.runs,
        h.est_run_pages,
        counters_json(&h.hinted),
        counters_json(&h.unhinted)
    )
}

/// Group-commit experiment: the same logged DML workload against two
/// durability configurations differing only in `wal_group_ops`.
struct WalCommitRecord {
    ops: u64,
    per_op_ms: f64,
    per_op_batches: u64,
    batched_ms: f64,
    batched_batches: u64,
    batched_mean_batch: f64,
}

impl WalCommitRecord {
    fn speedup(&self) -> f64 {
        if self.batched_ms > 0.0 {
            self.per_op_ms / self.batched_ms
        } else {
            1.0
        }
    }
}

/// Run `ops` logged inserts (sync every 50, then a final sync) on a
/// durable session whose WAL flushes every `group_ops` appends, and
/// report the device milliseconds the commit path charged.
fn wal_commit_run(group_ops: usize, ops: u64) -> (f64, upi_storage::WalCounters) {
    use std::sync::Arc;
    use upi::TableLayout;
    use upi_storage::{SimDisk, Store};
    use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

    let cfg = DiskConfig {
        wal_group_ops: group_ops,
        ..DiskConfig::default()
    };
    let store = Store::new(Arc::new(SimDisk::new(cfg)), 4 << 20);
    let schema = Schema::new(vec![("tag", FieldKind::U64), ("attr", FieldKind::Discrete)]);
    let mut db = upi_query::UncertainDb::create(
        store.clone(),
        "commit",
        schema,
        1,
        TableLayout::Upi(UpiConfig::default()),
    )
    .unwrap();
    db.enable_durability().unwrap();
    let before = store.disk.clock_ms();
    for i in 0..ops {
        let t = Tuple::new(
            TupleId(i),
            0.9,
            vec![
                Field::Certain(Datum::U64(i)),
                Field::Discrete(DiscretePmf::new(vec![(i % 32, 0.7), (32 + i % 7, 0.2)])),
            ],
        );
        db.insert_tuple(&t).unwrap();
        if (i + 1) % 50 == 0 {
            db.sync_wal().unwrap();
        }
    }
    db.sync_wal().unwrap();
    (store.disk.clock_ms() - before, db.table().wal_counters())
}

fn wal_commit_experiment() -> WalCommitRecord {
    let ops = 600;
    let (per_op_ms, per_op) = wal_commit_run(1, ops);
    let (batched_ms, batched) = wal_commit_run(32, ops);
    WalCommitRecord {
        ops,
        per_op_ms,
        per_op_batches: per_op.batches,
        batched_ms,
        batched_batches: batched.batches,
        batched_mean_batch: batched.mean_batch(),
    }
}

/// Mirror a refit model's per-kind scales into the metrics registry
/// (what `UncertainDb::recalibrate` does for a session).
fn record_refit_scales(metrics: &mut MetricsRegistry, model: &CostModel) {
    let mut scales = [1.0f64; N_PATH_KINDS];
    for k in PathKind::ALL {
        scales[k.index()] = model.scale(k);
    }
    metrics.record_refit(scales);
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    cold: &[CaseRecord],
    calibrated: &[CaseRecord],
    cold_worst: f64,
    cal_worst: f64,
    blocks: &[(String, CostModel, CalibrationStore)],
    hint: &HintRecord,
    frac: &HintRecord,
    wal: &WalCommitRecord,
) {
    let json_path = std::env::var("UPI_BENCH_PLANNER_JSON").unwrap_or_else(|_| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_planner.json"))
            .unwrap_or_else(|_| "BENCH_planner.json".to_string())
    });
    assert_eq!(cold.len(), calibrated.len());
    let mut json = String::from("{\n  \"cases\": [\n");
    for (i, (raw, cal)) in cold.iter().zip(calibrated).enumerate() {
        assert_eq!(raw.name, cal.name);
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"chosen\": \"{}\", \"chosen_ms\": {:.3}, \
             \"best_forced\": \"{}\", \"best_forced_ms\": {:.3}, \"ratio\": {:.4}, \
             \"cold_chosen\": \"{}\", \"cold_ratio\": {:.4}}}{}\n",
            cal.name,
            cal.chosen,
            cal.chosen_ms,
            cal.best_forced,
            cal.best_forced_ms,
            cal.ratio(),
            raw.chosen,
            raw.ratio(),
            if i + 1 < cold.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"summary\": {{\"worst_chosen_vs_best_forced\": {:.4}, \"within_10pct\": {}, \
         \"cold_worst\": {:.4}}},\n",
        cal_worst,
        cal_worst <= CAL_GATE,
        cold_worst
    ));
    json.push_str("  \"calibration\": [\n");
    for (b, (name, model, store)) in blocks.iter().enumerate() {
        json.push_str(&format!("    {{\"setup\": \"{name}\", \"scales\": {{"));
        for (i, kind) in PathKind::ALL.iter().enumerate() {
            json.push_str(&format!(
                "{}\"{}\": {{\"scale\": {:.4}, \"samples\": {}}}",
                if i == 0 { "" } else { ", " },
                kind.label(),
                model.scale(*kind),
                store.len(*kind)
            ));
        }
        json.push_str(&format!(
            "}}}}{}\n",
            if b + 1 < blocks.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"prefetch_hint\": {},\n", hint_json(hint)));
    json.push_str(&format!("  \"fractured_hint\": {},\n", hint_json(frac)));
    json.push_str(&format!(
        "  \"wal_group_commit\": {{\"ops\": {}, \"per_op\": {{\"device_ms\": {:.3}, \
         \"batches\": {}}}, \"batched\": {{\"device_ms\": {:.3}, \"batches\": {}, \
         \"mean_batch\": {:.2}}}, \"speedup\": {:.3}}}\n}}\n",
        wal.ops,
        wal.per_op_ms,
        wal.per_op_batches,
        wal.batched_ms,
        wal.batched_batches,
        wal.batched_mean_batch,
        wal.speedup()
    ));
    std::fs::write(&json_path, json).expect("write BENCH_planner.json");
    eprintln!("[json] wrote {json_path}");
}

fn main() {
    let disk_cfg = DiskConfig::default();
    let mut cold_records: Vec<CaseRecord> = Vec::new();
    let mut cal_records: Vec<CaseRecord> = Vec::new();
    // One model + sample store per figure setup: each is its own table
    // (and its own simulated machine), exactly like one `UncertainDb`
    // session calibrating itself.
    let mut blocks: Vec<(String, CostModel, CalibrationStore)> = Vec::new();
    // One registry across the whole bench: every chosen execution and
    // every refit pass lands here, snapshotted as BENCH_metrics.json.
    let mut metrics = MetricsRegistry::new();
    let hint_record;
    let fractured_hint_record;

    banner(
        "Planner",
        "planner-chosen plan vs every forced access path (Queries 1-5), cold then calibrated",
        "calibrated chosen within 10% of the best forced path at every point",
    );

    // --- Query 1 (fig04): point PTQ on the clustered attribute ---------
    {
        let s = author_setup(0.1);
        let mit = s.data.popular_institution();
        let catalog = Catalog::new(s.store.disk.config())
            .with_upi(&s.upi)
            .with_heap(&s.heap)
            .with_pii(&s.pii)
            .with_pool(&s.store.pool);
        let points: Vec<(String, PtqQuery)> = [1, 3, 5, 7, 9]
            .iter()
            .map(|&qt10| {
                let qt = qt10 as f64 / 10.0;
                (
                    format!("q1@{qt:.1}"),
                    PtqQuery::eq(author_fields::INSTITUTION, mit).with_qt(qt),
                )
            })
            .collect();
        let mut model = CostModel::from_disk(&disk_cfg);
        let mut cal_store = CalibrationStore::new();
        header(&["query1(cold)", "chosen", "chosen_ms", "forced..."]);
        for (label, q) in &points {
            cold_records.push(run_point(
                label,
                q,
                &catalog,
                &s.store,
                Some(&mut cal_store),
                COLD_GATE,
                &mut metrics,
            ));
        }
        model.refit(&cal_store);
        record_refit_scales(&mut metrics, &model);
        let calibrated = Catalog::new(s.store.disk.config())
            .with_cost_model(model)
            .with_upi(&s.upi)
            .with_heap(&s.heap)
            .with_pii(&s.pii)
            .with_pool(&s.store.pool);
        header(&["query1(calibrated)", "chosen", "chosen_ms", "forced..."]);
        for (label, q) in &points {
            cal_records.push(run_point(
                label,
                q,
                &calibrated,
                &s.store,
                None,
                CAL_GATE,
                &mut metrics,
            ));
        }
        blocks.push(("q1".to_string(), model, cal_store));

        // --- Prefetch hint win on the same setup -----------------------
        header(&["hint", "runs", "hinted", "unhinted"]);
        let q = PtqQuery::range(author_fields::INSTITUTION, 0, 40).with_qt(0.2);
        hint_record = run_hint_experiment(
            &q,
            "range[0,40]@0.2",
            &AccessPath::UpiRange,
            &catalog,
            &s.store,
        );

        // --- Fractured-hint win: the same rows as main + two fractures,
        //     so the range merge runs over three components and the plan
        //     carries one hint per component ----------------------------
        let mut fractured = FracturedUpi::create(
            s.store.clone(),
            "author.frac",
            author_fields::INSTITUTION,
            &[],
            FracturedConfig {
                upi: UpiConfig {
                    cutoff: 0.1,
                    ..UpiConfig::default()
                },
                buffer_ops: 0,
            },
        )
        .unwrap();
        let n = s.data.authors.len();
        fractured
            .load_initial(&s.data.authors[..n * 3 / 5])
            .unwrap();
        for t in &s.data.authors[n * 3 / 5..n * 4 / 5] {
            fractured.insert(t.clone()).unwrap();
        }
        fractured.flush().unwrap();
        for t in &s.data.authors[n * 4 / 5..] {
            fractured.insert(t.clone()).unwrap();
        }
        fractured.flush().unwrap();
        assert_eq!(fractured.n_fractures(), 2);
        let frac_catalog = Catalog::new(s.store.disk.config())
            .with_fractured(&fractured)
            .with_pool(&s.store.pool);
        fractured_hint_record = run_hint_experiment(
            &q,
            "fractured-range[0,40]@0.2",
            &AccessPath::FracturedRange,
            &frac_catalog,
            &s.store,
        );
    }

    // --- Queries 2-3 (fig05/fig06): aggregates, primary + secondary ----
    {
        let s = publication_setup(0.1);
        let mit = s.data.popular_institution();
        let japan = s.data.query_country();
        let catalog = Catalog::new(s.store.disk.config())
            .with_upi(&s.upi)
            .with_heap(&s.heap)
            .with_pii(&s.pii_inst)
            .with_pii(&s.pii_country);
        let mut points: Vec<(String, PtqQuery)> = Vec::new();
        for qt10 in [1, 5, 9] {
            let qt = qt10 as f64 / 10.0;
            points.push((
                format!("q2@{qt:.1}"),
                PtqQuery::eq(publication_fields::INSTITUTION, mit)
                    .with_qt(qt)
                    .with_group_count(publication_fields::JOURNAL),
            ));
        }
        for qt10 in [1, 5, 9] {
            let qt = qt10 as f64 / 10.0;
            points.push((
                format!("q3@{qt:.1}"),
                PtqQuery::eq(publication_fields::COUNTRY, japan)
                    .with_qt(qt)
                    .with_group_count(publication_fields::JOURNAL),
            ));
        }
        let mut model = CostModel::from_disk(&disk_cfg);
        let mut cal_store = CalibrationStore::new();
        header(&["query2-3(cold)", "chosen", "chosen_ms", "forced..."]);
        for (label, q) in &points {
            cold_records.push(run_point(
                label,
                q,
                &catalog,
                &s.store,
                Some(&mut cal_store),
                COLD_GATE,
                &mut metrics,
            ));
        }
        // One calibration pass over this setup's observations — the pass
        // the q3@0.5 crossover gate below rides on.
        model.refit(&cal_store);
        record_refit_scales(&mut metrics, &model);
        let calibrated = Catalog::new(s.store.disk.config())
            .with_cost_model(model)
            .with_upi(&s.upi)
            .with_heap(&s.heap)
            .with_pii(&s.pii_inst)
            .with_pii(&s.pii_country);
        header(&["query2-3(calibrated)", "chosen", "chosen_ms", "forced..."]);
        for (label, q) in &points {
            cal_records.push(run_point(
                label,
                q,
                &calibrated,
                &s.store,
                None,
                CAL_GATE,
                &mut metrics,
            ));
        }
        blocks.push(("q2-q3".to_string(), model, cal_store));
    }

    // --- Queries 4-5 (fig07/fig08): continuous circle + segment --------
    {
        let s = cartel_setup();
        let (qx, qy) = s.data.query_center();
        let seg = s.data.busy_segment();
        let catalog = Catalog::new(s.store.disk.config())
            .with_cupi(&s.cupi)
            .with_cont_secondary(&s.seg_on_cupi)
            .with_heap(&s.heap)
            .with_utree(&s.utree)
            .with_pii(&s.seg_on_heap);
        let mut points: Vec<(String, PtqQuery)> = Vec::new();
        for step in [2, 5, 10] {
            let radius = 100.0 * step as f64;
            points.push((
                format!("q4@r{radius:.0}"),
                PtqQuery::circle(observation_fields::LOCATION, qx, qy, radius).with_qt(0.5),
            ));
        }
        for qt10 in [1, 4, 8] {
            let qt = qt10 as f64 / 10.0;
            points.push((
                format!("q5@{qt:.1}"),
                PtqQuery::eq(observation_fields::SEGMENT, seg).with_qt(qt),
            ));
        }
        let mut model = CostModel::from_disk(&disk_cfg);
        let mut cal_store = CalibrationStore::new();
        header(&["query4-5(cold)", "chosen", "chosen_ms", "forced..."]);
        for (label, q) in &points {
            cold_records.push(run_point(
                label,
                q,
                &catalog,
                &s.store,
                Some(&mut cal_store),
                COLD_GATE,
                &mut metrics,
            ));
        }
        model.refit(&cal_store);
        record_refit_scales(&mut metrics, &model);
        // Same registration as the cold pass (no pool): cold vs.
        // calibrated must differ only in the pricing model, never in
        // the execution protocol.
        let calibrated = Catalog::new(s.store.disk.config())
            .with_cost_model(model)
            .with_cupi(&s.cupi)
            .with_cont_secondary(&s.seg_on_cupi)
            .with_heap(&s.heap)
            .with_utree(&s.utree)
            .with_pii(&s.seg_on_heap);
        header(&["query4-5(calibrated)", "chosen", "chosen_ms", "forced..."]);
        for (label, q) in &points {
            cal_records.push(run_point(
                label,
                q,
                &calibrated,
                &s.store,
                None,
                CAL_GATE,
                &mut metrics,
            ));
        }
        blocks.push(("q4-q5".to_string(), model, cal_store));
    }

    let cold_worst = cold_records
        .iter()
        .map(CaseRecord::ratio)
        .fold(1.0, f64::max);
    let cal_worst = cal_records
        .iter()
        .map(CaseRecord::ratio)
        .fold(1.0, f64::max);

    // The headline acceptance: the q3@0.5 crossover the concurrent-run
    // tracker broke (cold ≈ 1.10x at scale 0.05) must close to ≤ 1.05x
    // after the calibration pass.
    let q3 = cal_records
        .iter()
        .find(|r| r.name == "q3@0.5")
        .expect("q3@0.5 must be measured");
    if (scale() - 0.05).abs() < 1e-9 {
        assert!(
            q3.ratio() <= 1.05,
            "q3@0.5 calibrated ratio {:.3}x must be <= 1.05x at scale 0.05",
            q3.ratio()
        );
    }

    // Group commit: the same 600-insert logged workload, per-op commit
    // (wal_group_ops=1, one fsync-priced barrier per append) vs batched
    // (32). Same records end up durable either way; only the barrier
    // count — and therefore the commit-path device time — changes.
    let wal = wal_commit_experiment();
    summary(
        "planner.wal_group_commit",
        format!(
            "{:.0} ms per-op ({} batches) vs {:.0} ms batched ({} batches, mean {:.1}) = {:.1}x",
            wal.per_op_ms,
            wal.per_op_batches,
            wal.batched_ms,
            wal.batched_batches,
            wal.batched_mean_batch,
            wal.speedup()
        ),
    );
    assert!(
        wal.batched_ms < wal.per_op_ms * 0.8,
        "group commit must materially beat per-op commit on the same \
         workload: {:.1} ms batched vs {:.1} ms per-op",
        wal.batched_ms,
        wal.per_op_ms
    );

    let hint = hint_record;
    let frac_hint = fractured_hint_record;
    write_json(
        &cold_records,
        &cal_records,
        cold_worst,
        cal_worst,
        &blocks,
        &hint,
        &frac_hint,
        &wal,
    );
    // Session-metrics snapshot: per-kind query counts and device-ms
    // quantiles, pool ratios, refit count, misestimation quantiles.
    let snap = metrics.snapshot();
    let metrics_path = std::env::var("UPI_BENCH_METRICS_JSON").unwrap_or_else(|_| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_metrics.json"))
            .unwrap_or_else(|_| "BENCH_metrics.json".to_string())
    });
    std::fs::write(&metrics_path, snap.to_json()).expect("write BENCH_metrics.json");
    eprintln!("[json] wrote {metrics_path}");
    summary("planner.metrics_queries", snap.queries);
    summary("planner.metrics_refits", snap.refits);

    summary(
        "planner.worst_chosen_vs_best_forced",
        format!("{cal_worst:.3}x (calibrated; cold {cold_worst:.3}x)"),
    );
    summary("planner.within_10pct", cal_worst <= CAL_GATE);
    summary(
        "planner.q3_crossover",
        format!(
            "cold {:.3}x -> calibrated {:.3}x",
            {
                cold_records
                    .iter()
                    .find(|r| r.name == "q3@0.5")
                    .map(CaseRecord::ratio)
                    .unwrap_or(1.0)
            },
            q3.ratio()
        ),
    );
    for (name, model, store) in &blocks {
        summary(
            &format!("planner.calibration_scales.{name}"),
            PathKind::ALL
                .iter()
                .filter(|k| store.len(**k) > 0)
                .map(|k| format!("{}={:.2}({})", k.label(), model.scale(*k), store.len(*k)))
                .collect::<Vec<_>>()
                .join(" "),
        );
    }
    summary(
        "planner.hint_miss_reduction",
        format!(
            "{:.1}x ({} -> {} demand misses on {})",
            hint.unhinted.misses as f64 / hint.hinted.misses.max(1) as f64,
            hint.unhinted.misses,
            hint.hinted.misses,
            hint.query
        ),
    );
    summary(
        "planner.fractured_hint_miss_reduction",
        format!(
            "{:.1}x ({} -> {} demand misses over {} hinted runs on {})",
            frac_hint.unhinted.misses as f64 / frac_hint.hinted.misses.max(1) as f64,
            frac_hint.unhinted.misses,
            frac_hint.hinted.misses,
            frac_hint.runs,
            frac_hint.query
        ),
    );
}
