//! Planner validation — each figure query (4–8) executed under the
//! cost-based planner and under every forced access path.
//!
//! For every query point this prints the planner's chosen path, its
//! measured simulated runtime, and the runtime of each forced candidate;
//! it asserts that
//!
//! 1. every access path returns the **same result set**, and
//! 2. the planner-chosen plan is within **10%** of the best forced path
//!    (plus a small absolute slack for the sub-millisecond regime).
//!
//! This is the acceptance gate for the `upi-query` subsystem: the §6 cost
//! models, fed with live statistics, must actually pick the access path
//! the simulated disk agrees is fastest.
//!
//! A machine-readable `BENCH_planner.json` is written for the
//! perf-trajectory tooling (override the path with
//! `UPI_BENCH_PLANNER_JSON`): the per-point chosen/best-forced cost
//! ratios, plus two prefetch-hint experiments — a clustered range plan
//! (one hinted run) and a fractured range plan over three components
//! (one hint per component), each executed hinted (as planned) and with
//! the hints stripped, with the buffer-pool page/miss win recorded.

use upi::{FracturedConfig, FracturedUpi, UpiConfig};
use upi_bench::setups::{author_setup, cartel_setup, publication_setup};
use upi_bench::{banner, header, measure_cold, ms, summary};
use upi_query::{AccessPath, Catalog, PhysicalPlan, PtqQuery, QueryOutput};
use upi_storage::PoolCounters;
use upi_workloads::cartel::observation_fields;
use upi_workloads::dblp::{author_fields, publication_fields};

/// One per-point record for `BENCH_planner.json`.
struct CaseRecord {
    name: String,
    chosen: String,
    chosen_ms: f64,
    best_forced: String,
    best_forced_ms: f64,
}

impl CaseRecord {
    fn ratio(&self) -> f64 {
        if self.best_forced_ms > 0.0 {
            self.chosen_ms / self.best_forced_ms
        } else {
            1.0
        }
    }
}

/// One prefetch-hint experiment's measurements (single-run or
/// fracture-parallel multi-run).
struct HintRecord {
    query: String,
    path: String,
    /// Number of hinted runs the plan carries (1, or one per component).
    runs: usize,
    /// Estimated pages across every hinted run.
    est_run_pages: usize,
    hinted: PoolCounters,
    unhinted: PoolCounters,
}

/// Comparable fingerprint of an output: sorted `(tid, confidence)` rows or
/// the group table.
fn fingerprint(out: &QueryOutput) -> Vec<(u64, u64)> {
    match &out.groups {
        Some(g) => g.clone(),
        None => {
            let mut rows: Vec<(u64, u64)> = out
                .rows
                .iter()
                .map(|r| (r.tuple.id.0, (r.confidence * 1e9).round() as u64))
                .collect();
            rows.sort_unstable();
            rows
        }
    }
}

/// Execute the planner's choice and each forced candidate cold; check
/// agreement and the 10% optimality bound.
fn run_point(
    label: &str,
    q: &PtqQuery,
    catalog: &Catalog<'_>,
    store: &upi_storage::Store,
) -> CaseRecord {
    let plan = q.plan(catalog).expect("planner must find a path");
    if std::env::var("UPI_PLANNER_EXPLAIN").is_ok() {
        eprintln!("--- {label}\n{}", plan.explain());
    }
    let chosen_label = plan.path().label();

    let mut chosen_out = None;
    let chosen = measure_cold(store, || {
        let out = plan.execute(catalog).unwrap();
        let n = out.len();
        chosen_out = Some(out);
        n
    });
    let reference = fingerprint(&chosen_out.expect("measured closure ran"));

    let mut best_forced = f64::INFINITY;
    let mut best_label = String::new();
    let mut cols = vec![label.to_string(), chosen_label.clone(), ms(chosen.sim_ms)];
    for cand in &plan.candidates {
        let forced = PhysicalPlan {
            query: q.clone(),
            candidates: vec![cand.clone()],
        };
        let mut forced_out = None;
        let m = measure_cold(store, || {
            let out = forced.execute(catalog).unwrap();
            let n = out.len();
            forced_out = Some(out);
            n
        });
        assert_eq!(
            fingerprint(&forced_out.expect("measured closure ran")),
            reference,
            "{label}: path {} disagrees with planner result",
            cand.path.label()
        );
        if m.sim_ms < best_forced {
            best_forced = m.sim_ms;
            best_label = cand.path.label();
        }
        cols.push(format!("{}={}", cand.path.label(), ms(m.sim_ms)));
    }
    println!("{}", cols.join("\t"));

    // 10% relative + 2 simulated ms absolute slack (sub-ms costs round in
    // the I/O ledger).
    assert!(
        chosen.sim_ms <= best_forced * 1.10 + 2.0,
        "{label}: planner chose {chosen_label} ({:.1} ms) but {best_label} is faster ({:.1} ms)",
        chosen.sim_ms,
        best_forced
    );
    CaseRecord {
        name: label.to_string(),
        chosen: chosen_label,
        chosen_ms: chosen.sim_ms,
        best_forced: best_label,
        best_forced_ms: best_forced,
    }
}

/// A prefetch-hint experiment: the plan for `want_path`, executed cold
/// as planned (hints armed — one per run, so a fracture-parallel path
/// arms one per component) and again with every hint stripped. Same
/// plan, same rows — the only difference is whether the buffer pool
/// learns each run from the planner or from two adjacent misses, so the
/// miss delta is exactly the hints' contribution.
fn run_hint_experiment(
    q: &PtqQuery,
    label: &str,
    want_path: &AccessPath,
    catalog: &Catalog<'_>,
    store: &upi_storage::Store,
) -> HintRecord {
    let plan = q.plan(catalog).expect("planner must find a path");
    let cand = plan
        .candidates
        .iter()
        .find(|c| &c.path == want_path)
        .expect("requested path must be enumerated");
    assert!(
        !cand.hints.is_empty(),
        "{} must carry prefetch hints",
        cand.path.label()
    );
    let runs = cand.hints.len();
    let est_run_pages: usize = cand.hints.iter().map(|h| h.est_run_pages).sum();

    let measure = |strip_hints: bool| -> (PoolCounters, usize) {
        let mut cand = cand.clone();
        if strip_hints {
            cand.hints.clear();
        }
        let forced = PhysicalPlan {
            query: q.clone(),
            candidates: vec![cand],
        };
        store.go_cold();
        let before = store.pool.counters();
        let rows = forced.execute(catalog).unwrap().len();
        (store.pool.counters().since(&before), rows)
    };
    let (hinted, hinted_rows) = measure(false);
    let (unhinted, unhinted_rows) = measure(true);
    assert_eq!(hinted_rows, unhinted_rows, "hints must not change results");
    assert_eq!(
        hinted.hinted_runs, runs as u64,
        "every per-run hint must arm: {hinted}"
    );
    assert!(
        hinted.misses < unhinted.misses,
        "hint-armed read-ahead must cut demand misses: {hinted} vs {unhinted}"
    );
    println!(
        "{label}\t{} run(s)\thinted: {} pages ({} misses)\tunhinted: {} pages ({} misses)",
        runs,
        hinted.pages_read(),
        hinted.misses,
        unhinted.pages_read(),
        unhinted.misses
    );
    HintRecord {
        query: label.to_string(),
        path: cand.path.label(),
        runs,
        est_run_pages,
        hinted,
        unhinted,
    }
}

fn counters_json(c: &PoolCounters) -> String {
    format!(
        "{{\"pages_read\": {}, \"misses\": {}, \"readahead\": {}, \"readahead_hits\": {}}}",
        c.pages_read(),
        c.misses,
        c.readahead,
        c.readahead_hits
    )
}

fn hint_json(h: &HintRecord) -> String {
    format!(
        "{{\"query\": \"{}\", \"path\": \"{}\", \"runs\": {}, \"est_run_pages\": {}, \
         \"hinted\": {}, \"unhinted\": {}}}",
        h.query,
        h.path,
        h.runs,
        h.est_run_pages,
        counters_json(&h.hinted),
        counters_json(&h.unhinted)
    )
}

fn write_json(records: &[CaseRecord], worst_ratio: f64, hint: &HintRecord, frac: &HintRecord) {
    let json_path = std::env::var("UPI_BENCH_PLANNER_JSON").unwrap_or_else(|_| {
        std::env::var("CARGO_MANIFEST_DIR")
            .map(|d| format!("{d}/../../BENCH_planner.json"))
            .unwrap_or_else(|_| "BENCH_planner.json".to_string())
    });
    let mut json = String::from("{\n  \"cases\": [\n");
    for (i, r) in records.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"chosen\": \"{}\", \"chosen_ms\": {:.3}, \
             \"best_forced\": \"{}\", \"best_forced_ms\": {:.3}, \"ratio\": {:.4}}}{}\n",
            r.name,
            r.chosen,
            r.chosen_ms,
            r.best_forced,
            r.best_forced_ms,
            r.ratio(),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"summary\": {{\"worst_chosen_vs_best_forced\": {:.4}, \"within_10pct\": {}}},\n",
        worst_ratio,
        worst_ratio <= 1.10
    ));
    json.push_str(&format!("  \"prefetch_hint\": {},\n", hint_json(hint)));
    json.push_str(&format!("  \"fractured_hint\": {}\n}}\n", hint_json(frac)));
    std::fs::write(&json_path, json).expect("write BENCH_planner.json");
    eprintln!("[json] wrote {json_path}");
}

fn main() {
    let mut records: Vec<CaseRecord> = Vec::new();
    let mut worst_ratio = 1.0f64;
    let hint_record;
    let fractured_hint_record;
    let mut track = |records: &mut Vec<CaseRecord>, rec: CaseRecord| {
        worst_ratio = worst_ratio.max(rec.ratio());
        records.push(rec);
    };

    banner(
        "Planner",
        "planner-chosen plan vs every forced access path (Queries 1-5)",
        "chosen within 10% of the best forced path at every point",
    );

    // --- Query 1 (fig04): point PTQ on the clustered attribute ---------
    {
        let s = author_setup(0.1);
        let mit = s.data.popular_institution();
        let catalog = Catalog::new(s.store.disk.config())
            .with_upi(&s.upi)
            .with_heap(&s.heap)
            .with_pii(&s.pii)
            .with_pool(&s.store.pool);
        header(&["query1", "chosen", "chosen_ms", "forced..."]);
        for qt10 in [1, 3, 5, 7, 9] {
            let qt = qt10 as f64 / 10.0;
            let q = PtqQuery::eq(author_fields::INSTITUTION, mit).with_qt(qt);
            track(
                &mut records,
                run_point(&format!("q1@{qt:.1}"), &q, &catalog, &s.store),
            );
        }

        // --- Prefetch hint win on the same setup -----------------------
        header(&["hint", "runs", "hinted", "unhinted"]);
        let q = PtqQuery::range(author_fields::INSTITUTION, 0, 40).with_qt(0.2);
        hint_record = run_hint_experiment(
            &q,
            "range[0,40]@0.2",
            &AccessPath::UpiRange,
            &catalog,
            &s.store,
        );

        // --- Fractured-hint win: the same rows as main + two fractures,
        //     so the range merge runs over three components and the plan
        //     carries one hint per component ----------------------------
        let mut fractured = FracturedUpi::create(
            s.store.clone(),
            "author.frac",
            author_fields::INSTITUTION,
            &[],
            FracturedConfig {
                upi: UpiConfig {
                    cutoff: 0.1,
                    ..UpiConfig::default()
                },
                buffer_ops: 0,
            },
        )
        .unwrap();
        let n = s.data.authors.len();
        fractured
            .load_initial(&s.data.authors[..n * 3 / 5])
            .unwrap();
        for t in &s.data.authors[n * 3 / 5..n * 4 / 5] {
            fractured.insert(t.clone()).unwrap();
        }
        fractured.flush().unwrap();
        for t in &s.data.authors[n * 4 / 5..] {
            fractured.insert(t.clone()).unwrap();
        }
        fractured.flush().unwrap();
        assert_eq!(fractured.n_fractures(), 2);
        let frac_catalog = Catalog::new(s.store.disk.config())
            .with_fractured(&fractured)
            .with_pool(&s.store.pool);
        fractured_hint_record = run_hint_experiment(
            &q,
            "fractured-range[0,40]@0.2",
            &AccessPath::FracturedRange,
            &frac_catalog,
            &s.store,
        );
    }

    // --- Queries 2-3 (fig05/fig06): aggregates, primary + secondary ----
    {
        let s = publication_setup(0.1);
        let mit = s.data.popular_institution();
        let japan = s.data.query_country();
        let catalog = Catalog::new(s.store.disk.config())
            .with_upi(&s.upi)
            .with_heap(&s.heap)
            .with_pii(&s.pii_inst)
            .with_pii(&s.pii_country);
        header(&["query2", "chosen", "chosen_ms", "forced..."]);
        for qt10 in [1, 5, 9] {
            let qt = qt10 as f64 / 10.0;
            let q = PtqQuery::eq(publication_fields::INSTITUTION, mit)
                .with_qt(qt)
                .with_group_count(publication_fields::JOURNAL);
            track(
                &mut records,
                run_point(&format!("q2@{qt:.1}"), &q, &catalog, &s.store),
            );
        }
        header(&["query3", "chosen", "chosen_ms", "forced..."]);
        for qt10 in [1, 5, 9] {
            let qt = qt10 as f64 / 10.0;
            let q = PtqQuery::eq(publication_fields::COUNTRY, japan)
                .with_qt(qt)
                .with_group_count(publication_fields::JOURNAL);
            track(
                &mut records,
                run_point(&format!("q3@{qt:.1}"), &q, &catalog, &s.store),
            );
        }
    }

    // --- Queries 4-5 (fig07/fig08): continuous circle + segment --------
    {
        let s = cartel_setup();
        let (qx, qy) = s.data.query_center();
        let seg = s.data.busy_segment();
        let catalog = Catalog::new(s.store.disk.config())
            .with_cupi(&s.cupi)
            .with_cont_secondary(&s.seg_on_cupi)
            .with_heap(&s.heap)
            .with_utree(&s.utree)
            .with_pii(&s.seg_on_heap);
        header(&["query4", "chosen", "chosen_ms", "forced..."]);
        for step in [2, 5, 10] {
            let radius = 100.0 * step as f64;
            let q = PtqQuery::circle(observation_fields::LOCATION, qx, qy, radius).with_qt(0.5);
            track(
                &mut records,
                run_point(&format!("q4@r{radius:.0}"), &q, &catalog, &s.store),
            );
        }
        header(&["query5", "chosen", "chosen_ms", "forced..."]);
        for qt10 in [1, 4, 8] {
            let qt = qt10 as f64 / 10.0;
            let q = PtqQuery::eq(observation_fields::SEGMENT, seg).with_qt(qt);
            track(
                &mut records,
                run_point(&format!("q5@{qt:.1}"), &q, &catalog, &s.store),
            );
        }
    }

    let hint = hint_record;
    let frac_hint = fractured_hint_record;
    write_json(&records, worst_ratio, &hint, &frac_hint);
    summary(
        "planner.worst_chosen_vs_best_forced",
        format!("{worst_ratio:.3}x"),
    );
    summary("planner.within_10pct", worst_ratio <= 1.10);
    summary(
        "planner.hint_miss_reduction",
        format!(
            "{:.1}x ({} -> {} demand misses on {})",
            hint.unhinted.misses as f64 / hint.hinted.misses.max(1) as f64,
            hint.unhinted.misses,
            hint.hinted.misses,
            hint.query
        ),
    );
    summary(
        "planner.fractured_hint_miss_reduction",
        format!(
            "{:.1}x ({} -> {} demand misses over {} hinted runs on {})",
            frac_hint.unhinted.misses as f64 / frac_hint.hinted.misses.max(1) as f64,
            frac_hint.unhinted.misses,
            frac_hint.hinted.misses,
            frac_hint.runs,
            frac_hint.query
        ),
    );
}
