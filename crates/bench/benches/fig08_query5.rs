//! Figure 8 — Query 5 (Cartel road segment) runtime vs probability
//! threshold: a PII-style segment index over the Continuous UPI vs the same
//! index over an unclustered heap.
//!
//! `SELECT * FROM CarObservation WHERE Segment=123 (confidence ≥ QT)`
//!
//! Paper shape: the continuous-UPI variant is up to ~180× faster at low QT
//! (the lat/long ↔ segment correlation collapses its pointers onto a few
//! heap pages); the gap narrows but stays large (> 50×) for selective
//! thresholds. As in Figure 7, `*_io` columns show the ratio without the
//! constant per-file open charges.

use upi_bench::setups::cartel_setup;
use upi_bench::{banner, header, measure_cold, ms, summary};

fn main() {
    let s = cartel_setup();
    let seg = s.data.busy_segment();
    banner(
        "Figure 8",
        "Query 5 runtime vs QT (segment index on Continuous UPI vs on unclustered heap)",
        "up to ~180x faster on the UPI at low QT; gap narrows at high QT",
    );
    header(&[
        "QT",
        "PII_on_heap_ms",
        "PII_on_CUPI_ms",
        "speedup",
        "heap_io_ms",
        "CUPI_io_ms",
        "io_speedup",
        "rows",
    ]);
    let mut speedups = Vec::new();
    let mut io_speedups = Vec::new();
    for qt10 in 1..=8 {
        let qt = qt10 as f64 / 10.0;
        let on_heap = measure_cold(&s.store, || {
            s.seg_on_heap.ptq(&s.heap, seg, qt).unwrap().len()
        });
        let on_cupi = measure_cold(&s.store, || {
            s.seg_on_cupi.ptq(&s.cupi, seg, qt).unwrap().len()
        });
        assert_eq!(on_heap.rows, on_cupi.rows, "indexes disagree at QT={qt}");
        let speedup = on_heap.sim_ms / on_cupi.sim_ms;
        let h_io = on_heap.sim_ms - on_heap.io.init_ms;
        let c_io = on_cupi.sim_ms - on_cupi.io.init_ms;
        let io_speedup = h_io / c_io.max(1e-9);
        if on_cupi.rows > 0 {
            speedups.push(speedup);
            io_speedups.push(io_speedup);
        }
        println!(
            "{qt:.1}\t{}\t{}\t{:.1}x\t{}\t{}\t{:.1}x\t{}",
            ms(on_heap.sim_ms),
            ms(on_cupi.sim_ms),
            speedup,
            ms(h_io),
            ms(c_io),
            io_speedup,
            on_cupi.rows
        );
    }
    let rng = |v: &[f64]| {
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(0.0, f64::max);
        format!("{min:.1}x - {max:.1}x")
    };
    summary("fig8.speedup_range", rng(&speedups));
    summary("fig8.io_speedup_range", rng(&io_speedups));
}
