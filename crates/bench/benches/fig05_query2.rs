//! Figure 5 — Query 2 (Publication Aggregate on Institution) runtime vs
//! probability threshold: PII vs UPI.
//!
//! `SELECT Journal, COUNT(*) FROM Publication WHERE Institution=MIT
//!  (confidence ≥ QT) GROUP BY Journal`
//!
//! Paper shape: same ordering as Figure 4 on the larger Publication table —
//! UPI wins by 20–100×; absolute runtimes larger than Query 1's.

use upi::exec::group_count;
use upi_bench::setups::publication_setup;
use upi_bench::{banner, header, measure_cold, ms, summary};
use upi_workloads::dblp::publication_fields;

fn main() {
    let s = publication_setup(0.1);
    let mit = s.data.popular_institution();
    banner(
        "Figure 5",
        "Query 2 runtime vs probability threshold (PII vs UPI, C=0.1)",
        "UPI 20-100x faster; larger absolute times than Fig 4",
    );
    header(&["QT", "PII_ms", "UPI_ms", "speedup", "groups"]);
    let mut speedups = Vec::new();
    for qt10 in 1..=9 {
        let qt = qt10 as f64 / 10.0;
        let pii = measure_cold(&s.store, || {
            let rows = s.pii_inst.ptq(&s.heap, mit, qt).unwrap();
            group_count(&rows, publication_fields::JOURNAL)
                .unwrap()
                .len()
        });
        let upi = measure_cold(&s.store, || {
            let rows = s.upi.ptq(mit, qt).unwrap();
            group_count(&rows, publication_fields::JOURNAL)
                .unwrap()
                .len()
        });
        assert_eq!(pii.rows, upi.rows, "aggregates disagree at QT={qt}");
        let speedup = pii.sim_ms / upi.sim_ms;
        speedups.push(speedup);
        println!(
            "{qt:.1}\t{}\t{}\t{:.1}x\t{}",
            ms(pii.sim_ms),
            ms(upi.sim_ms),
            speedup,
            upi.rows
        );
    }
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    summary("fig5.speedup_range", format!("{min:.1}x - {max:.1}x"));
}
