//! Figure 10 — Fractured-UPI Query 1 runtime, real vs cost-model estimate,
//! over 30 insert batches with a merge after every 10.
//!
//! Paper shape: a sawtooth — runtime climbs with each accumulated fracture,
//! drops back to the initial level after each merge, and the §6.2 estimate
//! (`Cost_scan·sel + N_frac(Cost_init + H·T_seek)`) tracks the real curve.

use upi::cost::estimate_query_fractured_ms;
use upi_bench::setups::fractured_author_setup;
use upi_bench::{banner, header, measure_cold, ms, summary};

const BATCHES: usize = 30;
const MERGE_EVERY: usize = 10;
const QT: f64 = 0.1;

fn main() {
    let mut s = fractured_author_setup(0.1);
    let key = s.data.popular_institution();
    banner(
        "Figure 10",
        "Fractured UPI runtime over 30 insert batches (merge every 10): real vs estimated",
        "sawtooth restored by merges; estimate tracks real",
    );
    header(&["batch", "n_fractures", "real_ms", "estimated_ms", "rows"]);
    let mut next_id = s.data.authors.len() as u64;
    let batch_inserts = s.data.authors.len() / 10;
    let mut ratios = Vec::new();
    for batch in 0..=BATCHES {
        if batch > 0 {
            let new = s
                .data
                .more_authors(batch_inserts, next_id, 1000 + batch as u64);
            next_id += batch_inserts as u64;
            for t in new {
                s.fractured.insert(t).unwrap();
            }
            // 1% deletes drawn from the original table.
            let n_del = s.data.authors.len() / 100;
            for i in 0..n_del {
                let idx = (batch * 7919 + i * 104729) % s.data.authors.len();
                s.fractured.delete(s.data.authors[idx].id).ok();
            }
            s.fractured.flush().unwrap();
        }
        let real = measure_cold(&s.store, || s.fractured.ptq(key, QT).unwrap().len());
        let est = estimate_query_fractured_ms(s.store.disk.config(), &s.fractured, key, QT);
        ratios.push(est / real.sim_ms);
        println!(
            "{batch}\t{}\t{}\t{}\t{}",
            s.fractured.n_fractures(),
            ms(real.sim_ms),
            ms(est),
            real.rows
        );
        if batch > 0 && batch % MERGE_EVERY == 0 {
            s.fractured.merge().unwrap();
            let restored = measure_cold(&s.store, || s.fractured.ptq(key, QT).unwrap().len());
            println!(
                "{batch}+merge\t{}\t{}\t{}\t{}",
                s.fractured.n_fractures(),
                ms(restored.sim_ms),
                ms(estimate_query_fractured_ms(
                    s.store.disk.config(),
                    &s.fractured,
                    key,
                    QT
                )),
                restored.rows
            );
        }
    }
    let gm = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    summary("fig10.geomean_est_over_real", format!("{gm:.2}"));
}
