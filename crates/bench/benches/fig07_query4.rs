//! Figure 7 — Query 4 (Cartel location circle query) runtime vs radius,
//! QT = 0.5: Continuous UPI vs a secondary U-Tree over an unclustered heap.
//!
//! `SELECT * FROM CarObservation WHERE Distance(location, q) ≤ Radius`
//!
//! Paper shape: the continuous UPI is ~50–60× faster across radii because
//! its heap pages are clustered by the R-Tree's hierarchical leaf order,
//! while the secondary U-Tree pays one unclustered-heap fetch per
//! candidate.
//!
//! Columns: total simulated time, plus `*_io` with the fixed per-file
//! `Cost_init` charges removed. Both systems open two files, so the open
//! charges are a constant that the paper amortizes against multi-second
//! queries; at laptop scale they compress the visible ratio, so both views
//! are printed.

use upi_bench::setups::cartel_setup;
use upi_bench::{banner, header, measure_cold, ms, summary};

fn main() {
    let s = cartel_setup();
    let (qx, qy) = s.data.query_center();
    banner(
        "Figure 7",
        "Query 4 runtime vs radius (Continuous UPI vs secondary U-Tree, QT=0.5)",
        "continuous UPI ~50-60x faster across radii",
    );
    header(&[
        "radius_m",
        "U-Tree_ms",
        "ContinuousUPI_ms",
        "speedup",
        "U-Tree_io_ms",
        "CUPI_io_ms",
        "io_speedup",
        "rows",
    ]);
    let mut speedups = Vec::new();
    let mut io_speedups = Vec::new();
    for step in 1..=10 {
        let radius = 100.0 * step as f64;
        let ut = measure_cold(&s.store, || {
            s.utree
                .query_circle(&s.heap, qx, qy, radius, 0.5)
                .unwrap()
                .len()
        });
        let cu = measure_cold(&s.store, || {
            s.cupi.query_circle(qx, qy, radius, 0.5).unwrap().len()
        });
        assert_eq!(ut.rows, cu.rows, "indexes disagree at radius {radius}");
        let speedup = ut.sim_ms / cu.sim_ms;
        let ut_io = ut.sim_ms - ut.io.init_ms;
        let cu_io = cu.sim_ms - cu.io.init_ms;
        let io_speedup = ut_io / cu_io.max(1e-9);
        speedups.push(speedup);
        io_speedups.push(io_speedup);
        println!(
            "{radius:.0}\t{}\t{}\t{:.1}x\t{}\t{}\t{:.1}x\t{}",
            ms(ut.sim_ms),
            ms(cu.sim_ms),
            speedup,
            ms(ut_io),
            ms(cu_io),
            io_speedup,
            cu.rows
        );
    }
    let rng = |v: &[f64]| {
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = v.iter().cloned().fold(0.0, f64::max);
        format!("{min:.1}x - {max:.1}x")
    };
    summary("fig7.speedup_range", rng(&speedups));
    summary("fig7.io_speedup_range", rng(&io_speedups));
}
