//! Table 7 — maintenance cost: insert 10 % new tuples / delete 1 % of
//! existing tuples on (a) an unclustered heap, (b) a non-fractured UPI,
//! (c) a Fractured UPI.
//!
//! Paper numbers (700 k authors): unclustered 7.8 s / 75 s, UPI 650 s /
//! 212 s, Fractured UPI 4.0 s / 0.03 s. Shape: the UPI pays a random
//! read-modify-write per alternative; the unclustered heap appends cheaply
//! but deletes randomly; the Fractured UPI buffers in RAM and writes one
//! sequential fracture (deletes are nearly free — just an id list).

use upi::{DiscreteUpi, FracturedConfig, FracturedUpi, UnclusteredHeap, UpiConfig};
use upi_bench::{banner, dblp_config, fresh_store, header, measure_cold, ms, summary};
use upi_uncertain::Tuple;
use upi_workloads::dblp::{self, author_fields};

fn main() {
    let data = dblp::generate(&dblp_config());
    let n = data.authors.len();
    let inserts = data.more_authors(n / 10, n as u64, 42);
    // Every 100th tuple is deleted (1%).
    let deletes: Vec<&Tuple> = data.authors.iter().step_by(100).collect();
    eprintln!(
        "[setup] base={n} inserts={} deletes={}",
        inserts.len(),
        deletes.len()
    );

    banner(
        "Table 7",
        "Maintenance cost (insert 10% / delete 1%)",
        "UPI slowest by far; fractured cheapest, deletes nearly free",
    );
    header(&["system", "insert_ms", "delete_ms"]);

    // (a) Unclustered heap (auto-increment clustered).
    {
        let store = fresh_store();
        let mut heap = UnclusteredHeap::create(store.clone(), "t7.heap", 8192).unwrap();
        heap.bulk_load(&data.authors).unwrap();
        let ins = measure_cold(&store, || {
            for t in &inserts {
                heap.insert(t).unwrap();
            }
            store.pool.flush_all();
            inserts.len()
        });
        let del = measure_cold(&store, || {
            for t in &deletes {
                heap.delete(t.id).unwrap();
            }
            store.pool.flush_all();
            deletes.len()
        });
        println!("Unclustered\t{}\t{}", ms(ins.sim_ms), ms(del.sim_ms));
        summary(
            "tab7.unclustered",
            format!("{} / {}", ms(ins.sim_ms), ms(del.sim_ms)),
        );
    }

    // (b) Non-fractured UPI.
    {
        let store = fresh_store();
        let mut upi = DiscreteUpi::create(
            store.clone(),
            "t7.upi",
            author_fields::INSTITUTION,
            UpiConfig::default(),
        )
        .unwrap();
        upi.bulk_load(&data.authors).unwrap();
        let ins = measure_cold(&store, || {
            for t in &inserts {
                upi.insert(t).unwrap();
            }
            store.pool.flush_all();
            inserts.len()
        });
        let del = measure_cold(&store, || {
            for t in &deletes {
                upi.delete(t).unwrap();
            }
            store.pool.flush_all();
            deletes.len()
        });
        println!("UPI\t{}\t{}", ms(ins.sim_ms), ms(del.sim_ms));
        summary(
            "tab7.upi",
            format!("{} / {}", ms(ins.sim_ms), ms(del.sim_ms)),
        );
    }

    // (c) Fractured UPI: buffer + one flush ("we drop the insert buffer
    // after all insertions and deletions" — i.e. the flush is included).
    {
        let store = fresh_store();
        let mut f = FracturedUpi::create(
            store.clone(),
            "t7.fupi",
            author_fields::INSTITUTION,
            &[],
            FracturedConfig {
                upi: UpiConfig::default(),
                buffer_ops: 0,
            },
        )
        .unwrap();
        f.load_initial(&data.authors).unwrap();
        let ins = measure_cold(&store, || {
            for t in &inserts {
                f.insert(t.clone()).unwrap();
            }
            f.flush().unwrap();
            inserts.len()
        });
        let del = measure_cold(&store, || {
            for t in &deletes {
                f.delete(t.id).unwrap();
            }
            f.flush().unwrap();
            deletes.len()
        });
        println!("FracturedUPI\t{}\t{}", ms(ins.sim_ms), ms(del.sim_ms));
        summary(
            "tab7.fractured",
            format!("{} / {}", ms(ins.sim_ms), ms(del.sim_ms)),
        );
    }
}
