//! Figure 12 — Cutoff-index cost model *estimates* for exactly the Figure 3
//! settings, plus Table 6's derived parameters.
//!
//! Paper shape: the estimated curves (sequential scan + 2 opens + sigmoid
//! pointer-saturation term) match the measured Figure 3 curves for both the
//! selective and the non-selective query.

use upi::cost::{estimate_cutoff_pointers, estimate_query_cutoff_ms, model_for_upi};
use upi_bench::setups::{author_setup, author_setup_with};
use upi_bench::{banner, header, measure_cold, ms, summary};

const QTS: [f64; 3] = [0.05, 0.15, 0.25];
const CS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

fn main() {
    banner(
        "Figure 12",
        "Cutoff index cost model (same settings as Figure 3)",
        "estimated curves track the measured ones, incl. saturation",
    );
    let mut ratios: Vec<f64> = Vec::new();
    for selective in [false, true] {
        println!(
            "\n# {} query (estimated_ms / measured_ms per cell)",
            if selective {
                "selective"
            } else {
                "non-selective"
            }
        );
        header(&["C", "QT=0.05", "QT=0.15", "QT=0.25"]);
        for &c in &CS {
            let s = author_setup_with(c, Some(128));
            let key = if selective {
                s.data.selective_institution()
            } else {
                s.data.popular_institution()
            };
            let mut cells = Vec::new();
            for &qt in &QTS {
                let est = estimate_query_cutoff_ms(s.store.disk.config(), &s.upi, key, qt);
                let real = measure_cold(&s.store, || s.upi.ptq(key, qt).unwrap().len());
                ratios.push(est / real.sim_ms);
                cells.push(format!("{}/{}", ms(est), ms(real.sim_ms)));
            }
            println!("{c:.1}\t{}", cells.join("\t"));
        }
    }
    let gm = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    let worst = ratios
        .iter()
        .map(|&r| if r > 1.0 { r } else { 1.0 / r })
        .fold(0.0f64, f64::max);
    summary("fig12.geomean_est_over_real", format!("{gm:.2}"));
    summary("fig12.worst_cell_error", format!("{worst:.1}x"));

    // Table 6 companion: print the model parameters in force.
    let s = author_setup(0.1);
    let model = model_for_upi(s.store.disk.config(), &s.upi);
    println!("\n# Table 6 — parameters (as instantiated at this scale)");
    header(&["parameter", "value"]);
    println!("T_seek\t{} ms", model.params.t_seek_ms);
    println!("T_read\t{} ms/MB", model.params.t_read_ms_per_mb);
    println!("T_write\t{} ms/MB", model.params.t_write_ms_per_mb);
    println!("Cost_init\t{} ms", model.params.cost_init_ms);
    println!("H\t{}", model.params.height);
    println!("S_table\t{} bytes", model.params.table_bytes);
    println!("N_leaf\t{}", model.params.n_leaf);
    println!("Cost_scan\t{} ms", ms(model.params.cost_scan_ms()));
    println!("sigmoid_k\t{:.6}", model.sigmoid_k());
    let _ = estimate_cutoff_pointers(&s.upi, s.data.popular_institution(), 0.05);
}
