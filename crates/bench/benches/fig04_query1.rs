//! Figure 4 — Query 1 (Author Extraction) runtime vs probability
//! threshold: PII on an unclustered heap vs UPI (C = 0.1).
//!
//! `SELECT * FROM Author WHERE Institution=MIT (confidence ≥ QT)`
//!
//! Paper shape: both curves fall as QT rises; the UPI is 20–100× faster
//! because it answers with one seek + a sequential run while PII performs a
//! bitmap-style heap fetch per qualifying tuple.

use upi_bench::setups::author_setup;
use upi_bench::{banner, header, measure_cold, ms, summary};

fn main() {
    let s = author_setup(0.1);
    let mit = s.data.popular_institution();
    banner(
        "Figure 4",
        "Query 1 runtime vs probability threshold (PII vs UPI, C=0.1)",
        "UPI 20-100x faster than PII across QT",
    );
    header(&["QT", "PII_ms", "UPI_ms", "speedup", "rows"]);
    let mut speedups: Vec<f64> = Vec::new();
    for qt10 in 1..=9 {
        let qt = qt10 as f64 / 10.0;
        let pii = measure_cold(&s.store, || s.pii.ptq(&s.heap, mit, qt).unwrap().len());
        let upi = measure_cold(&s.store, || s.upi.ptq(mit, qt).unwrap().len());
        assert_eq!(pii.rows, upi.rows, "indexes disagree at QT={qt}");
        let speedup = pii.sim_ms / upi.sim_ms;
        speedups.push(speedup);
        println!(
            "{qt:.1}\t{}\t{}\t{:.1}x\t{}",
            ms(pii.sim_ms),
            ms(upi.sim_ms),
            speedup,
            upi.rows
        );
    }
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    summary("fig4.speedup_range", format!("{min:.1}x - {max:.1}x"));
    summary("fig4.upi_always_faster", speedups.iter().all(|&s| s > 1.0));
}
