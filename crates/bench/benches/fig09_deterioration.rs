//! Figure 9 — Query 1 (C = QT = 0.1) runtime deterioration over 10 insert
//! batches (each: insert 10 % of the initial table, delete 1 % of live
//! tuples) for an unclustered heap + PII, a non-fractured UPI, and a
//! Fractured UPI (one fracture per batch).
//!
//! Paper shape: after 10 batches the table grew only ~90 %, but the
//! unclustered heap is ~4× slower (deletion fragmentation), the
//! non-fractured UPI ~40× slower (random splits scatter the leaf chain),
//! and the Fractured UPI ~9× slower (per-fracture open + seek overhead) —
//! fracturing eliminates fragmentation but accumulates components.

use upi::{DiscreteUpi, FracturedConfig, FracturedUpi, Pii, UnclusteredHeap, UpiConfig};
use upi_bench::setups::author_setup;
use upi_bench::{banner, fresh_store, header, measure_cold, ms, summary};
use upi_uncertain::Tuple;
use upi_workloads::dblp::author_fields;

const BATCHES: usize = 10;
const QT: f64 = 0.1;
const C: f64 = 0.1;

fn main() {
    // Base setup provides the data + the unclustered/PII and UPI systems.
    let s = author_setup(C);
    let key = s.data.popular_institution();
    let mut heap = s.heap;
    let mut pii = s.pii;
    let mut upi = s.upi;
    let store_ab = s.store;

    // Fractured UPI on its own simulated machine.
    let store_c = fresh_store();
    let mut fractured = FracturedUpi::create(
        store_c.clone(),
        "author.fupi",
        author_fields::INSTITUTION,
        &[],
        FracturedConfig {
            upi: UpiConfig {
                cutoff: C,
                ..UpiConfig::default()
            },
            buffer_ops: 0,
        },
    )
    .unwrap();
    fractured.load_initial(&s.data.authors).unwrap();

    banner(
        "Figure 9",
        "Query 1 (C=QT=0.1) deterioration over insert batches",
        "UPI degrades worst (~40x), fractured ~9x, unclustered ~4x",
    );
    header(&[
        "batch",
        "Unclustered_ms",
        "UPI_ms",
        "FracturedUPI_ms",
        "Unclustered_io",
        "UPI_io",
        "Fractured_io",
        "rows",
    ]);

    let mut live: Vec<Tuple> = s.data.authors.clone();
    let mut next_id = live.len() as u64;
    let batch_inserts = s.data.authors.len() / 10;
    let mut firsts = (0.0, 0.0, 0.0);
    let mut lasts = (0.0, 0.0, 0.0);
    let mut firsts_total = (0.0, 0.0, 0.0);
    let mut lasts_total = (0.0, 0.0, 0.0);

    let mut rng_state = 0x5EEDu64;
    let mut next_rand = move |n: usize| {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((rng_state >> 33) as usize) % n
    };

    for batch in 0..=BATCHES {
        if batch > 0 {
            // Insert 10% fresh tuples.
            let new = s.data.more_authors(batch_inserts, next_id, batch as u64);
            next_id += batch_inserts as u64;
            for t in &new {
                heap.insert(t).unwrap();
                pii.insert(t).unwrap();
                upi.insert(t).unwrap();
                fractured.insert(t.clone()).unwrap();
            }
            live.extend(new);
            // Delete 1% of live tuples at random positions.
            let n_del = live.len() / 100;
            for _ in 0..n_del {
                let idx = next_rand(live.len());
                let victim = live.swap_remove(idx);
                heap.delete(victim.id).unwrap();
                pii.delete(&victim).unwrap();
                upi.delete(&victim).unwrap();
                fractured.delete(victim.id).unwrap();
            }
            fractured.flush().unwrap();
            store_ab.pool.flush_all();
        }

        let a = measure_cold(&store_ab, || pii.ptq(&heap, key, QT).unwrap().len());
        let b = measure_cold(&store_ab, || upi.ptq(key, QT).unwrap().len());
        let c = measure_cold(&store_c, || fractured.ptq(key, QT).unwrap().len());
        assert_eq!(a.rows, b.rows);
        assert_eq!(b.rows, c.rows);
        let io = (
            a.sim_ms - a.io.init_ms,
            b.sim_ms - b.io.init_ms,
            c.sim_ms - c.io.init_ms,
        );
        if batch == 0 {
            firsts = io;
            firsts_total = (a.sim_ms, b.sim_ms, c.sim_ms);
        }
        lasts = io;
        lasts_total = (a.sim_ms, b.sim_ms, c.sim_ms);
        println!(
            "{batch}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            ms(a.sim_ms),
            ms(b.sim_ms),
            ms(c.sim_ms),
            ms(io.0),
            ms(io.1),
            ms(io.2),
            a.rows
        );
    }
    // Total-time factors are the paper-comparable ones: the fractured
    // UPI's per-fracture overhead *is* `Cost_init + H·T_seek` (§6.2), so
    // the open charges belong in its deterioration. The `_io` variants
    // isolate the transfer/seek component.
    summary(
        "fig9.deterioration_unclustered",
        format!(
            "{:.1}x total, {:.1}x io",
            lasts_total.0 / firsts_total.0,
            lasts.0 / firsts.0
        ),
    );
    summary(
        "fig9.deterioration_upi",
        format!(
            "{:.1}x total, {:.1}x io",
            lasts_total.1 / firsts_total.1,
            lasts.1 / firsts.1
        ),
    );
    summary(
        "fig9.deterioration_fractured",
        format!(
            "{:.1}x total, {:.1}x io",
            lasts_total.2 / firsts_total.2,
            lasts.2 / firsts.2
        ),
    );
    let _ = &upi as &DiscreteUpi;
    let _ = &pii as &Pii;
    let _ = &heap as &UnclusteredHeap;
}
