//! Figure 11 — number of cutoff pointers, real vs estimated from the §6.1
//! probability histograms, across (QT, C) settings with QT < C.
//!
//! Paper shape: the bar pairs match closely — the per-value probability
//! histogram is an accurate selectivity estimator.

use upi::cost::estimate_cutoff_pointers;
use upi_bench::setups::author_setup_with;
use upi_bench::{banner, header, summary};

fn main() {
    banner(
        "Figure 11",
        "Cutoff pointer count: real vs histogram estimate",
        "estimated counts track real counts closely",
    );
    header(&["C", "QT", "real", "estimated", "rel_err"]);
    let mut errs: Vec<f64> = Vec::new();
    for &c in &[0.1, 0.2, 0.3, 0.4, 0.5] {
        let s = author_setup_with(c, Some(128));
        let key = s.data.popular_institution();
        for &qt in &[0.05, 0.15, 0.25] {
            if qt >= c {
                continue;
            }
            let real = s.upi.cutoff_index().scan(key, qt).unwrap().len() as f64;
            let est = estimate_cutoff_pointers(&s.upi, key, qt);
            let rel = if real > 0.0 {
                (est - real).abs() / real
            } else {
                est
            };
            errs.push(rel);
            println!("{c:.1}\t{qt:.2}\t{real:.0}\t{est:.0}\t{:.1}%", rel * 100.0);
        }
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    let max = errs.iter().cloned().fold(0.0, f64::max);
    summary(
        "fig11.relative_error",
        format!("mean {:.1}%, max {:.1}%", mean * 100.0, max * 100.0),
    );
}
