//! Figure 3 — Cutoff-index *measured* runtime: Query 1 against UPIs built
//! with varying cutoff threshold `C`, for QT ∈ {0.05, 0.15, 0.25}; once
//! with a non-selective key (the paper's ~37 k-author institution) and once
//! with a selective key (~300 authors).
//!
//! Paper shape: queries with `QT ≥ C` are fast (pure sequential); when
//! `QT < C` the cutoff-pointer chase makes them slower — but for the
//! non-selective key the curves *flatten* (saturation): beyond a point the
//! pointer dereferences already touch almost every heap page, so lowering
//! QT further costs nothing more, and larger C can even be *faster* at
//! saturation because the (smaller) heap scans cheaper.

use upi_bench::setups::author_setup_with;
use upi_bench::{banner, header, measure_cold, ms, summary};

const QTS: [f64; 3] = [0.05, 0.15, 0.25];
const CS: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

fn main() {
    banner(
        "Figure 3",
        "Cutoff index measured runtime (top: non-selective, bottom: selective)",
        "cliff when QT<C; saturation flattens the non-selective curves",
    );
    for selective in [false, true] {
        println!(
            "\n# {} query",
            if selective {
                "selective"
            } else {
                "non-selective"
            }
        );
        header(&["C", "QT=0.05_ms", "QT=0.15_ms", "QT=0.25_ms", "rows@0.05"]);
        let mut rows_at_005 = 0usize;
        let mut flat_check: Vec<f64> = Vec::new();
        for &c in &CS {
            let s = author_setup_with(c, Some(128));
            let key = if selective {
                s.data.selective_institution()
            } else {
                s.data.popular_institution()
            };
            let mut cells = Vec::new();
            for &qt in &QTS {
                let m = measure_cold(&s.store, || s.upi.ptq(key, qt).unwrap().len());
                if qt == QTS[0] {
                    rows_at_005 = m.rows;
                    if !selective && c >= 0.4 {
                        flat_check.push(m.sim_ms);
                    }
                }
                cells.push(ms(m.sim_ms));
            }
            println!("{c:.1}\t{}\t{rows_at_005}", cells.join("\t"));
        }
        if !selective && flat_check.len() >= 2 {
            let spread = (flat_check[0] - flat_check[1]).abs() / flat_check[0].max(flat_check[1]);
            summary(
                "fig3.saturation_flatness_C>=0.4",
                format!("{:.0}% spread", spread * 100.0),
            );
        }
    }
}
