//! Criterion micro-benchmarks for the substrate data structures (CPU-side
//! costs, complementing the simulated-I/O figure benches).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::sync::Arc;

use upi_btree::BTree;
use upi_rtree::{LeafEntry, Point, RTree, Rect};
use upi_storage::codec::KeyBuf;
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::ConstrainedGaussian;

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 64 << 20)
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.sample_size(20);

    g.bench_function("insert_8k_pages", |b| {
        b.iter_batched(
            || BTree::create(store(), "t", 8192).unwrap(),
            |mut t| {
                for i in 0u32..2000 {
                    t.insert(&i.to_be_bytes(), b"value-bytes-here").unwrap();
                }
                t
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("bulk_load_20k", |b| {
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0u32..20_000)
            .map(|i| (i.to_be_bytes().to_vec(), b"value-bytes-here".to_vec()))
            .collect();
        b.iter_batched(
            || (BTree::create(store(), "t", 8192).unwrap(), items.clone()),
            |(mut t, items)| {
                t.bulk_load(items).unwrap();
                t
            },
            BatchSize::SmallInput,
        )
    });

    let mut t = BTree::create(store(), "probe", 8192).unwrap();
    t.bulk_load(
        (0u32..50_000)
            .map(|i| (i.to_be_bytes().to_vec(), b"v".to_vec()))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    g.bench_function("point_get_50k", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i.wrapping_mul(2654435761)) % 50_000;
            t.get(&i.to_be_bytes()).unwrap()
        })
    });
    g.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rtree");
    g.sample_size(20);
    let entries: Vec<LeafEntry> = (0..20_000u64)
        .map(|i| {
            let x = (i % 141) as f64 * 35.0;
            let y = (i / 141) as f64 * 35.0;
            LeafEntry {
                rect: Rect::new(x, y, x + 10.0, y + 10.0),
                tid: i,
                aux: [x, y, 3.0, 10.0],
            }
        })
        .collect();
    let mut t = RTree::create(store(), "rt", 4096).unwrap();
    t.bulk_load(entries).unwrap();
    g.bench_function("circle_query_20k", |b| {
        b.iter(|| t.query_circle(Point::new(2500.0, 2500.0), 300.0).unwrap())
    });
    g.finish();
}

fn bench_gaussian(c: &mut Criterion) {
    let g2 = ConstrainedGaussian::new(0.0, 0.0, 10.0, 50.0);
    c.bench_function("gaussian_prob_in_circle", |b| {
        b.iter(|| g2.prob_in_circle(20.0, 5.0, 15.0))
    });
}

fn bench_codec(c: &mut Criterion) {
    c.bench_function("codec_composite_key", |b| {
        b.iter(|| {
            let mut k = KeyBuf::new();
            k.u64(123456).prob_desc(0.37).u64(98765);
            k.into_bytes()
        })
    });
}

criterion_group!(
    benches,
    bench_btree,
    bench_rtree,
    bench_gaussian,
    bench_codec
);
criterion_main!(benches);
