//! Ablation 4 — range PTQs (this repo's extension).
//!
//! The paper's intro motivates UPIs with "non-selective analytic queries";
//! its evaluation uses equality PTQs. This bench extends the comparison to
//! range predicates `WHERE Institution BETWEEN lo AND hi (confidence ≥
//! QT)`, where the clustered heap's advantage compounds: the UPI answers
//! with one seek + one sequential run across the whole range, while PII
//! degenerates to a near-full heap scan even faster than in the equality
//! case (alternatives *sum* under possible-world semantics, so no
//! per-alternative pruning applies).

use upi_bench::setups::author_setup_with;
use upi_bench::{banner, header, measure_cold, ms, summary};

fn main() {
    let s = author_setup_with(0.1, Some(256));
    banner(
        "Ablation 4",
        "Range PTQ (Institution BETWEEN 0 AND width, QT=0.3): PII vs UPI",
        "UPI stays one-seek-then-sequential as the range widens",
    );
    header(&["range_width", "PII_ms", "UPI_ms", "speedup", "rows"]);
    let mut speedups = Vec::new();
    for width in [1u64, 4, 16, 64, 256] {
        let pii = measure_cold(&s.store, || {
            s.pii.ptq_range(&s.heap, 0, width, 0.3).unwrap().len()
        });
        let upi = measure_cold(&s.store, || s.upi.ptq_range(0, width, 0.3).unwrap().len());
        assert_eq!(pii.rows, upi.rows, "range paths disagree at width {width}");
        let speedup = pii.sim_ms / upi.sim_ms;
        speedups.push(speedup);
        println!(
            "{width}\t{}\t{}\t{:.1}x\t{}",
            ms(pii.sim_ms),
            ms(upi.sim_ms),
            speedup,
            upi.rows
        );
    }
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    summary("abl4.range_speedup_range", format!("{min:.1}x - {max:.1}x"));
}
