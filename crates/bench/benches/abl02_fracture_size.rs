//! Ablation 2 — fracture granularity (§4.2: "even the size of one fracture
//! can vary").
//!
//! Applies the same stream of inserts with different insert-buffer sizes
//! and reports (a) total maintenance time and (b) Query 1 time afterwards.
//! Small fractures flush cheaply but accumulate per-fracture query
//! overhead (`N_frac (Cost_init + H T_seek)`); large fractures buffer more
//! RAM but keep queries fast.

use upi::{FracturedConfig, FracturedUpi, UpiConfig};
use upi_bench::{banner, dblp_config, fresh_store, header, measure_cold, ms, summary};
use upi_workloads::dblp::{self, author_fields};

fn main() {
    let mut cfg = dblp_config();
    cfg.n_authors /= 2; // ablations run at half scale
    let data = dblp::generate(&cfg);
    let key = data.popular_institution();
    let stream = data.more_authors(data.n_stream(), data.authors.len() as u64, 7);
    banner(
        "Ablation 2",
        "Fracture size sweep: maintenance cost vs query cost",
        "small fractures: cheap flushes, slow queries; large: the reverse",
    );
    header(&[
        "buffer_ops",
        "n_fractures",
        "maintain_ms",
        "query1_ms",
        "query1_io_ms",
    ]);
    let total = stream.len();
    for buffer_ops in [total / 32, total / 8, total / 2, total] {
        let store = fresh_store();
        let mut f = FracturedUpi::create(
            store.clone(),
            "abl",
            author_fields::INSTITUTION,
            &[],
            FracturedConfig {
                upi: UpiConfig::default(),
                buffer_ops,
            },
        )
        .unwrap();
        f.load_initial(&data.authors).unwrap();
        let maintain = measure_cold(&store, || {
            for t in &stream {
                f.insert(t.clone()).unwrap();
            }
            f.flush().unwrap();
            stream.len()
        });
        let q = measure_cold(&store, || f.ptq(key, 0.1).unwrap().len());
        println!(
            "{buffer_ops}\t{}\t{}\t{}\t{}",
            f.n_fractures(),
            ms(maintain.sim_ms),
            ms(q.sim_ms),
            ms(q.sim_ms - q.io.init_ms),
        );
    }
    summary("abl2.stream_len", total);
}

/// Size of the insert stream relative to the base table.
trait StreamLen {
    fn n_stream(&self) -> usize;
}

impl StreamLen for upi_workloads::DblpData {
    fn n_stream(&self) -> usize {
        self.authors.len() / 2
    }
}
