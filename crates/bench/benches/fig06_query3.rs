//! Figure 6 — Query 3 (Publication Aggregate on Country) runtime vs
//! probability threshold: a *secondary*-attribute query answered by
//! (a) PII on an unclustered heap, (b) a secondary index on the UPI
//! without tailored access, (c) the same with Tailored Secondary Index
//! Access (Algorithm 3).
//!
//! `SELECT Journal, COUNT(*) FROM Publication WHERE Country=Japan
//!  (confidence ≥ QT) GROUP BY Journal`
//!
//! Paper shape: tailored access is up to 7× faster than the plain
//! secondary-on-UPI and up to 8× faster than PII; the plain secondary is
//! *not* much better than PII (sometimes worse) because it cannot exploit
//! pointer overlap.

use upi::exec::group_count;
use upi_bench::setups::publication_setup;
use upi_bench::{banner, header, measure_cold, ms, summary};
use upi_workloads::dblp::publication_fields;

fn main() {
    let s = publication_setup(0.1);
    let japan = s.data.query_country();
    banner(
        "Figure 6",
        "Query 3 via secondary index on Country (PII vs UPI vs UPI+tailored)",
        "tailored up to 7-8x faster; untailored close to PII",
    );
    header(&[
        "QT",
        "PII_unclustered_ms",
        "UPI_secondary_ms",
        "UPI_tailored_ms",
        "tailored_vs_pii",
        "rows",
    ]);
    let mut best = 0.0f64;
    for qt10 in 1..=9 {
        let qt = qt10 as f64 / 10.0;
        let pii = measure_cold(&s.store, || {
            let rows = s.pii_country.ptq(&s.heap, japan, qt).unwrap();
            group_count(&rows, publication_fields::JOURNAL)
                .unwrap()
                .len()
        });
        let plain = measure_cold(&s.store, || {
            let rows = s.upi.ptq_secondary(0, japan, qt, false).unwrap();
            group_count(&rows, publication_fields::JOURNAL)
                .unwrap()
                .len()
        });
        let tailored = measure_cold(&s.store, || {
            let rows = s.upi.ptq_secondary(0, japan, qt, true).unwrap();
            group_count(&rows, publication_fields::JOURNAL)
                .unwrap()
                .len()
        });
        assert_eq!(
            plain.rows, tailored.rows,
            "access paths disagree at QT={qt}"
        );
        let ratio = pii.sim_ms / tailored.sim_ms;
        best = best.max(ratio);
        println!(
            "{qt:.1}\t{}\t{}\t{}\t{:.1}x\t{}",
            ms(pii.sim_ms),
            ms(plain.sim_ms),
            ms(tailored.sim_ms),
            ratio,
            tailored.rows
        );
    }
    summary("fig6.best_tailored_speedup_vs_pii", format!("{best:.1}x"));
}
