//! Pre-built experimental setups shared by the figure/table benches.

use upi::{
    ContinuousConfig, ContinuousSecondary, ContinuousUpi, DiscreteUpi, FracturedConfig,
    FracturedUpi, Pii, SecondaryUTree, UnclusteredHeap, UpiConfig,
};
use upi_storage::Store;
use upi_workloads::dblp::{author_fields, publication_fields};
use upi_workloads::{cartel, dblp, CartelData, DblpData};

use crate::{cartel_config, dblp_config, fresh_store};

/// The Author-table setup: unclustered heap + PII baseline + a UPI
/// (both on `Institution`).
pub struct AuthorSetup {
    /// Simulated machine.
    pub store: Store,
    /// Generated dataset.
    pub data: DblpData,
    /// Unclustered heap (baseline storage).
    pub heap: UnclusteredHeap,
    /// PII over the unclustered heap.
    pub pii: Pii,
    /// The UPI under test.
    pub upi: DiscreteUpi,
}

/// Build the Author setup with cutoff threshold `c`.
pub fn author_setup(c: f64) -> AuthorSetup {
    author_setup_with(c, None)
}

/// Build the Author setup with an explicit payload size. The cutoff-index
/// figures (3/11/12) use small tuples like the paper's Author table, so
/// that an unsaturated pointer chase is expensive *relative to* a table
/// scan; the comparative figures keep the default payload.
pub fn author_setup_with(c: f64, payload_bytes: Option<usize>) -> AuthorSetup {
    let store = fresh_store();
    let mut cfg = dblp_config();
    if let Some(p) = payload_bytes {
        cfg.payload_bytes = p;
    }
    let data = dblp::generate(&cfg);
    eprintln!(
        "[setup] authors={} institutions={}",
        data.authors.len(),
        data.config.n_institutions
    );
    let mut heap = UnclusteredHeap::create(store.clone(), "author.heap", 8192).unwrap();
    heap.bulk_load(&data.authors).unwrap();
    let mut pii = Pii::create(
        store.clone(),
        "author.pii",
        author_fields::INSTITUTION,
        8192,
    )
    .unwrap();
    pii.bulk_load(&data.authors).unwrap();
    let mut upi = DiscreteUpi::create(
        store.clone(),
        "author.upi",
        author_fields::INSTITUTION,
        UpiConfig {
            cutoff: c,
            ..UpiConfig::default()
        },
    )
    .unwrap();
    upi.bulk_load(&data.authors).unwrap();
    AuthorSetup {
        store,
        data,
        heap,
        pii,
        upi,
    }
}

/// The Publication-table setup for Queries 2–3: PII baselines on
/// institution and country over an unclustered heap, and a UPI on
/// institution with a country secondary index.
pub struct PublicationSetup {
    /// Simulated machine.
    pub store: Store,
    /// Generated dataset.
    pub data: DblpData,
    /// Unclustered heap.
    pub heap: UnclusteredHeap,
    /// PII on Institution over the unclustered heap (Query 2 baseline).
    pub pii_inst: Pii,
    /// PII on Country over the unclustered heap (Query 3 baseline).
    pub pii_country: Pii,
    /// UPI on Institution with a Country secondary (index 0).
    pub upi: DiscreteUpi,
}

/// Build the Publication setup with cutoff threshold `c`.
pub fn publication_setup(c: f64) -> PublicationSetup {
    let store = fresh_store();
    let data = dblp::generate(&dblp_config());
    eprintln!("[setup] publications={}", data.publications.len());
    let mut heap = UnclusteredHeap::create(store.clone(), "pub.heap", 8192).unwrap();
    heap.bulk_load(&data.publications).unwrap();
    let mut pii_inst = Pii::create(
        store.clone(),
        "pub.pii_inst",
        publication_fields::INSTITUTION,
        8192,
    )
    .unwrap();
    pii_inst.bulk_load(&data.publications).unwrap();
    let mut pii_country = Pii::create(
        store.clone(),
        "pub.pii_country",
        publication_fields::COUNTRY,
        8192,
    )
    .unwrap();
    pii_country.bulk_load(&data.publications).unwrap();
    let mut upi = DiscreteUpi::create(
        store.clone(),
        "pub.upi",
        publication_fields::INSTITUTION,
        UpiConfig {
            cutoff: c,
            ..UpiConfig::default()
        },
    )
    .unwrap();
    upi.add_secondary(publication_fields::COUNTRY).unwrap();
    upi.bulk_load(&data.publications).unwrap();
    PublicationSetup {
        store,
        data,
        heap,
        pii_inst,
        pii_country,
        upi,
    }
}

/// The Cartel setup for Queries 4–5.
pub struct CartelSetup {
    /// Simulated machine.
    pub store: Store,
    /// Generated dataset.
    pub data: CartelData,
    /// Continuous UPI on location.
    pub cupi: ContinuousUpi,
    /// PII-style segment index over the continuous UPI.
    pub seg_on_cupi: ContinuousSecondary,
    /// Unclustered heap.
    pub heap: UnclusteredHeap,
    /// Secondary U-Tree over the unclustered heap (Query 4 baseline).
    pub utree: SecondaryUTree,
    /// PII on segment over the unclustered heap (Query 5 baseline).
    pub seg_on_heap: Pii,
}

/// Build the Cartel setup.
pub fn cartel_setup() -> CartelSetup {
    use cartel::observation_fields as f;
    let store = fresh_store();
    let data = cartel::generate(&cartel_config());
    eprintln!(
        "[setup] observations={} segments={}",
        data.observations.len(),
        data.config.n_segments()
    );
    // Heap pages sized so one R-Tree leaf's tuples roughly fill one page
    // (the paper's 64 KB pages against ~300-byte tuples; our leaves hold
    // ~45 entries, so 16 KB keeps the same one-leaf-one-page mapping
    // without 4x internal fragmentation).
    let mut cupi = ContinuousUpi::create(
        store.clone(),
        "cartel.cupi",
        f::LOCATION,
        ContinuousConfig {
            node_page: 4096,
            heap_page: 16384,
        },
    )
    .unwrap();
    cupi.bulk_load(&data.observations).unwrap();
    let mut seg_on_cupi =
        ContinuousSecondary::create(store.clone(), "cartel.seg_cupi", f::SEGMENT, 8192).unwrap();
    seg_on_cupi.bulk_load(&cupi, &data.observations).unwrap();
    let mut heap = UnclusteredHeap::create(store.clone(), "cartel.heap", 8192).unwrap();
    heap.bulk_load(&data.observations).unwrap();
    let mut utree =
        SecondaryUTree::create(store.clone(), "cartel.utree", f::LOCATION, 4096).unwrap();
    utree.bulk_load(&data.observations).unwrap();
    let mut seg_on_heap = Pii::create(store.clone(), "cartel.seg_heap", f::SEGMENT, 8192).unwrap();
    seg_on_heap.bulk_load(&data.observations).unwrap();
    CartelSetup {
        store,
        data,
        cupi,
        seg_on_cupi,
        heap,
        utree,
        seg_on_heap,
    }
}

/// A fractured-UPI author setup for the maintenance experiments
/// (Figures 9–10, Tables 7–8).
pub struct MaintenanceSetup {
    /// Simulated machine.
    pub store: Store,
    /// Generated dataset.
    pub data: DblpData,
    /// Fractured UPI preloaded with the authors.
    pub fractured: FracturedUpi,
}

/// Build a fractured author setup with cutoff threshold `c`.
pub fn fractured_author_setup(c: f64) -> MaintenanceSetup {
    let store = fresh_store();
    let data = dblp::generate(&dblp_config());
    let mut fractured = FracturedUpi::create(
        store.clone(),
        "author.fupi",
        author_fields::INSTITUTION,
        &[],
        FracturedConfig {
            upi: UpiConfig {
                cutoff: c,
                ..UpiConfig::default()
            },
            buffer_ops: 0,
        },
    )
    .unwrap();
    fractured.load_initial(&data.authors).unwrap();
    MaintenanceSetup {
        store,
        data,
        fractured,
    }
}
