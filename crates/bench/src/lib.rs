//! Shared benchmark harness for the per-figure/table reproductions.
//!
//! Every `benches/figNN_*.rs` / `benches/tabNN_*.rs` target is a
//! `harness = false` binary that prints the corresponding figure's series
//! (parameter column + one column per curve) in TSV form, plus a shape
//! summary. Reported runtimes are **simulated disk milliseconds** (see
//! `DESIGN.md`): deterministic, host-independent, and faithful to the
//! paper's disk-bound setting.
//!
//! Scale: the environment variable `UPI_BENCH_SCALE` (float, default 1.0)
//! multiplies dataset sizes, e.g. `UPI_BENCH_SCALE=0.25 cargo bench` for a
//! quick pass.

use std::sync::Arc;

use upi_storage::{DiskConfig, IoStats, SimDisk, Store};
use upi_workloads::{CartelConfig, DblpConfig};

/// Buffer-pool size for experiments. Must be far smaller than the tables
/// (the paper runs with a cold database and buffer cache).
pub const POOL_BYTES: usize = 8 << 20;

/// A fresh simulated machine with Table 6's disk parameters.
pub fn fresh_store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), POOL_BYTES)
}

/// Dataset scale factor from `UPI_BENCH_SCALE`.
pub fn scale() -> f64 {
    std::env::var("UPI_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

/// DBLP generator configuration at the current scale.
///
/// At scale 1.0 the Author heap is a couple hundred MB — large enough that
/// the sequential-vs-random trade-off, not the fixed `Cost_init`, dominates
/// (the paper's tables are 0.3–2.5 GB).
pub fn dblp_config() -> DblpConfig {
    let s = scale();
    DblpConfig {
        n_authors: ((300_000.0 * s) as usize).max(2_000),
        n_publications: ((600_000.0 * s) as usize).max(4_000),
        payload_bytes: 512,
        ..DblpConfig::default()
    }
}

/// Cartel generator configuration at the current scale.
pub fn cartel_config() -> CartelConfig {
    let s = scale();
    CartelConfig {
        n_observations: ((400_000.0 * s) as usize).max(5_000),
        payload_bytes: 128,
        ..CartelConfig::default()
    }
}

/// One cold measurement of a query.
#[derive(Debug, Clone, Copy)]
pub struct Measured {
    /// Simulated disk milliseconds.
    pub sim_ms: f64,
    /// I/O counter deltas.
    pub io: IoStats,
    /// Host wall-clock milliseconds (informational only).
    pub wall_ms: f64,
    /// Result rows returned.
    pub rows: usize,
}

/// Run `f` against a cold cache/cold files/parked head, returning the
/// simulated cost and the number of rows it reported.
pub fn measure_cold<F: FnMut() -> usize>(store: &Store, mut f: F) -> Measured {
    store.go_cold();
    let before = store.disk.stats();
    let wall0 = std::time::Instant::now();
    let rows = f();
    let io = store.disk.stats().since(&before);
    Measured {
        sim_ms: io.total_ms(),
        io,
        wall_ms: wall0.elapsed().as_secs_f64() * 1e3,
        rows,
    }
}

/// Print a figure/table banner.
pub fn banner(id: &str, title: &str, paper_shape: &str) {
    println!();
    println!("# {id} — {title}");
    println!("# paper shape: {paper_shape}");
    println!("# runtimes are simulated disk milliseconds (see DESIGN.md)");
}

/// Print a TSV header row.
pub fn header(cols: &[&str]) {
    println!("{}", cols.join("\t"));
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Print a `key: value` shape-summary line (picked up by EXPERIMENTS.md).
pub fn summary(key: &str, value: impl std::fmt::Display) {
    println!("## {key}: {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_store_uses_table6_parameters() {
        let st = fresh_store();
        let cfg = st.disk.config();
        assert_eq!(cfg.seek_ms, 10.0);
        assert_eq!(cfg.read_ms_per_mb, 20.0);
        assert_eq!(cfg.write_ms_per_mb, 50.0);
        assert_eq!(cfg.init_ms, 100.0);
    }

    #[test]
    fn measure_cold_counts_io() {
        let st = fresh_store();
        let f = st.disk.create_file("t", 4096);
        let p = st.disk.alloc_page(f).unwrap();
        st.pool.put(p, bytes::Bytes::from(vec![0u8; 4096]));
        st.pool.flush_all();
        let m = measure_cold(&st, || {
            st.pool.get(p).unwrap();
            1
        });
        assert_eq!(m.rows, 1);
        assert!(m.sim_ms > 0.0, "cold read must charge the clock");
        assert_eq!(m.io.page_reads, 1);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(1234.4), "1234");
        assert_eq!(ms(12.34), "12.3");
        assert_eq!(ms(0.1234), "0.123");
    }
}

pub mod setups;
