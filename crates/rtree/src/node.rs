//! On-page R-Tree node encoding.
//!
//! Fixed-size entries keep the layout trivial:
//!
//! ```text
//! header: [0] tag (1=leaf, 2=internal), [2..4] count u16, [4..16] reserved
//! leaf entry     (72 B): rect 4×f64 | tid u64 | aux 4×f64
//! internal entry (40 B): rect 4×f64 | child page id u64
//! ```
//!
//! `aux` carries the constrained-Gaussian parameters `(cx, cy, sigma,
//! bound)` of the entry's location distribution — the per-entry
//! probabilistic metadata a U-Tree stores so that threshold pruning can run
//! without touching the heap.

use bytes::Bytes;
use upi_storage::PageId;

use crate::geom::Rect;

pub(crate) const HEADER_LEN: usize = 16;
pub(crate) const LEAF_ENTRY_LEN: usize = 32 + 8 + 32;
pub(crate) const INTERNAL_ENTRY_LEN: usize = 32 + 8;

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

/// A leaf entry: one alternative location record of one tuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafEntry {
    /// MBR of the uncertainty region (the boundary circle's bbox).
    pub rect: Rect,
    /// Tuple id this entry refers to.
    pub tid: u64,
    /// Distribution parameters `(cx, cy, sigma, bound)`.
    pub aux: [f64; 4],
}

/// Decoded R-Tree node.
#[derive(Debug, Clone)]
pub(crate) enum RNode {
    Leaf(Vec<LeafEntry>),
    Internal(Vec<(Rect, PageId)>),
}

impl RNode {
    pub fn len(&self) -> usize {
        match self {
            RNode::Leaf(v) => v.len(),
            RNode::Internal(v) => v.len(),
        }
    }

    /// MBR of every entry in the node.
    pub fn mbr(&self) -> Rect {
        let mut r = Rect::empty();
        match self {
            RNode::Leaf(v) => {
                for e in v {
                    r = r.union(&e.rect);
                }
            }
            RNode::Internal(v) => {
                for (er, _) in v {
                    r = r.union(er);
                }
            }
        }
        r
    }

    pub fn encode(&self, page_size: usize) -> Bytes {
        let mut buf = vec![0u8; page_size];
        let count = self.len();
        match self {
            RNode::Leaf(entries) => {
                assert!(
                    HEADER_LEN + count * LEAF_ENTRY_LEN <= page_size,
                    "leaf overflow: {count} entries"
                );
                buf[0] = TAG_LEAF;
                buf[2..4].copy_from_slice(&(count as u16).to_le_bytes());
                let mut at = HEADER_LEN;
                for e in entries {
                    write_rect(&mut buf, &mut at, &e.rect);
                    buf[at..at + 8].copy_from_slice(&e.tid.to_le_bytes());
                    at += 8;
                    for v in e.aux {
                        buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
                        at += 8;
                    }
                }
            }
            RNode::Internal(entries) => {
                assert!(
                    HEADER_LEN + count * INTERNAL_ENTRY_LEN <= page_size,
                    "internal overflow: {count} entries"
                );
                buf[0] = TAG_INTERNAL;
                buf[2..4].copy_from_slice(&(count as u16).to_le_bytes());
                let mut at = HEADER_LEN;
                for (r, child) in entries {
                    write_rect(&mut buf, &mut at, r);
                    buf[at..at + 8].copy_from_slice(&child.0.to_le_bytes());
                    at += 8;
                }
            }
        }
        Bytes::from(buf)
    }

    pub fn decode(data: &[u8]) -> RNode {
        let count = u16::from_le_bytes(data[2..4].try_into().unwrap()) as usize;
        let mut at = HEADER_LEN;
        match data[0] {
            TAG_LEAF => {
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let rect = read_rect(data, &mut at);
                    let tid = u64::from_le_bytes(data[at..at + 8].try_into().unwrap());
                    at += 8;
                    let mut aux = [0.0; 4];
                    for v in &mut aux {
                        *v = f64::from_le_bytes(data[at..at + 8].try_into().unwrap());
                        at += 8;
                    }
                    entries.push(LeafEntry { rect, tid, aux });
                }
                RNode::Leaf(entries)
            }
            TAG_INTERNAL => {
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let rect = read_rect(data, &mut at);
                    let child = PageId(u64::from_le_bytes(data[at..at + 8].try_into().unwrap()));
                    at += 8;
                    entries.push((rect, child));
                }
                RNode::Internal(entries)
            }
            t => panic!("corrupt r-tree node tag {t}"),
        }
    }
}

fn write_rect(buf: &mut [u8], at: &mut usize, r: &Rect) {
    for v in [r.min_x, r.min_y, r.max_x, r.max_y] {
        buf[*at..*at + 8].copy_from_slice(&v.to_le_bytes());
        *at += 8;
    }
}

fn read_rect(data: &[u8], at: &mut usize) -> Rect {
    let mut vals = [0.0f64; 4];
    for v in &mut vals {
        *v = f64::from_le_bytes(data[*at..*at + 8].try_into().unwrap());
        *at += 8;
    }
    Rect {
        min_x: vals[0],
        min_y: vals[1],
        max_x: vals[2],
        max_y: vals[3],
    }
}

/// Maximum leaf entries for a page size.
pub(crate) fn leaf_capacity(page_size: usize) -> usize {
    (page_size - HEADER_LEN) / LEAF_ENTRY_LEN
}

/// Maximum internal entries for a page size.
pub(crate) fn internal_capacity(page_size: usize) -> usize {
    (page_size - HEADER_LEN) / INTERNAL_ENTRY_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_roundtrip() {
        let entries = vec![
            LeafEntry {
                rect: Rect::new(0.0, 1.0, 2.0, 3.0),
                tid: 42,
                aux: [1.0, 2.0, 3.0, 4.0],
            },
            LeafEntry {
                rect: Rect::new(-5.0, -5.0, 5.0, 5.0),
                tid: 7,
                aux: [0.0, 0.0, 10.0, 50.0],
            },
        ];
        let n = RNode::Leaf(entries.clone());
        let dec = RNode::decode(&n.encode(4096));
        match dec {
            RNode::Leaf(got) => assert_eq!(got, entries),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn internal_roundtrip() {
        let entries = vec![
            (Rect::new(0.0, 0.0, 1.0, 1.0), PageId(3)),
            (Rect::new(2.0, 2.0, 3.0, 3.0), PageId(9)),
        ];
        let n = RNode::Internal(entries.clone());
        match RNode::decode(&n.encode(4096)) {
            RNode::Internal(got) => assert_eq!(got, entries),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn capacities_for_4k_pages() {
        // The paper's 4 KB node pages: ~56 leaf entries, ~102 fan-out.
        assert_eq!(leaf_capacity(4096), 56);
        assert_eq!(internal_capacity(4096), 102);
    }

    #[test]
    fn node_mbr_covers_entries() {
        let n = RNode::Leaf(vec![
            LeafEntry {
                rect: Rect::new(0.0, 0.0, 1.0, 1.0),
                tid: 1,
                aux: [0.0; 4],
            },
            LeafEntry {
                rect: Rect::new(5.0, -2.0, 6.0, 0.5),
                tid: 2,
                aux: [0.0; 4],
            },
        ]);
        assert_eq!(n.mbr(), Rect::new(0.0, -2.0, 6.0, 1.0));
    }
}
