//! # upi-rtree
//!
//! R-Tree substrate for the **Continuous UPI** (§5 of the UPI paper) and the
//! secondary U-Tree baseline.
//!
//! The paper builds its continuous primary index "on top of R-Tree variants
//! like PTIs and U-Trees": small (4 KB) R-Tree node pages whose leaves are
//! mapped to large (64 KB) heap pages, clustered by the hierarchical
//! location of the leaf in the tree. This crate provides that R-Tree:
//!
//! * fixed-size leaf entries carrying the MBR, the tuple id, and the
//!   parameters of the tuple's constrained-Gaussian location distribution
//!   (the pruning metadata a U-Tree keeps in its entries);
//! * quadratic-split insertion and **STR bulk loading** (the bulk path is
//!   what the read-only Cartel experiments of Figures 7–8 use);
//! * circle-range candidate search with MBR pruning;
//! * [`RTree::leaf_order`] — the depth-first "hierarchical node location"
//!   order (`<2,1,3>` keys in Figure 2) that the continuous UPI uses to
//!   cluster its heap file;
//! * leaf-split events surfaced to the caller so a synchronized heap file
//!   can split its pages accordingly (§5: "when R-Tree nodes are merged or
//!   split, we merge and split heap pages accordingly").

mod geom;
mod node;
mod tree;

pub use geom::{Point, Rect};
pub use node::LeafEntry;
pub use tree::{RTree, RTreeStats, SplitEvent};
