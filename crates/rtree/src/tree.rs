//! R-Tree insert / bulk-load / query.

use upi_storage::error::Result;
use upi_storage::{FileId, PageId, Store};

use crate::geom::{Point, Rect};
use crate::node::{internal_capacity, leaf_capacity, LeafEntry, RNode};

/// A completed node split: MBR and page of the new right sibling.
type NodeSplit = Option<(Rect, PageId)>;

/// STR bulk-load fill fraction.
const BULK_FILL: f64 = 0.80;
/// Quadratic-split minimum fill fraction.
const MIN_FILL: f64 = 0.40;

/// Size statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeStats {
    /// Height including leaves (1 = root is a leaf).
    pub height: usize,
    /// Leaf page count.
    pub leaf_pages: usize,
    /// Internal page count.
    pub internal_pages: usize,
    /// Leaf entries.
    pub entries: u64,
}

/// A leaf split observed during insertion, reported to the caller so a
/// synchronized heap file can split its pages accordingly (§5).
#[derive(Debug, Clone)]
pub struct SplitEvent {
    /// Page that was split (keeps the first group).
    pub old_leaf: PageId,
    /// Newly allocated page holding the second group.
    pub new_leaf: PageId,
    /// Tuple ids that moved to `new_leaf`.
    pub moved: Vec<u64>,
}

/// A disk-backed R-Tree with quadratic splits and STR bulk loading.
pub struct RTree {
    store: Store,
    file: FileId,
    page_size: usize,
    root: PageId,
    height: usize,
    entries: u64,
    leaf_pages: usize,
    internal_pages: usize,
}

impl RTree {
    /// Create an empty tree in a fresh file (the paper uses 4 KB nodes).
    pub fn create(store: Store, name: &str, page_size: u32) -> Result<RTree> {
        let file = store.disk.create_file(name, page_size);
        let root = store.disk.alloc_page(file)?;
        let node = RNode::Leaf(Vec::new());
        store.pool.put(root, node.encode(page_size as usize));
        Ok(RTree {
            store,
            file,
            page_size: page_size as usize,
            root,
            height: 1,
            entries: 0,
            leaf_pages: 1,
            internal_pages: 0,
        })
    }

    /// Backing file.
    pub fn file(&self) -> FileId {
        self.file
    }

    /// Leaf entry count.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Height (1 = root is a leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Statistics.
    pub fn stats(&self) -> RTreeStats {
        RTreeStats {
            height: self.height,
            leaf_pages: self.leaf_pages,
            internal_pages: self.internal_pages,
            entries: self.entries,
        }
    }

    /// Minimum bounding rectangle of all indexed entries (`None` when the
    /// tree is empty) — the spatial-domain estimate behind circle-query
    /// selectivity in the planner.
    pub fn bounds(&self) -> Result<Option<Rect>> {
        if self.is_empty() {
            return Ok(None);
        }
        Ok(Some(self.read(self.root)?.mbr()))
    }

    fn read(&self, pid: PageId) -> Result<RNode> {
        Ok(RNode::decode(&self.store.pool.get(pid)?))
    }

    fn write(&self, pid: PageId, node: &RNode) {
        self.store.pool.put(pid, node.encode(self.page_size));
    }

    /// Insert one entry; any leaf splits are appended to `events`. Returns
    /// the leaf page the entry ended up in (after splits), which the
    /// continuous UPI uses to place the tuple in the synchronized heap.
    pub fn insert(&mut self, entry: LeafEntry, events: &mut Vec<SplitEvent>) -> Result<PageId> {
        let (_, split, dest) = self.insert_rec(self.root, entry, events)?;
        if let Some((right_rect, right_pid)) = split {
            // Grow a new root above the old one.
            let left = self.read(self.root)?;
            let left_rect = left.mbr();
            let new_root = self.store.disk.alloc_page(self.file)?;
            let node = RNode::Internal(vec![(left_rect, self.root), (right_rect, right_pid)]);
            self.write(new_root, &node);
            self.root = new_root;
            self.height += 1;
            self.internal_pages += 1;
        }
        self.entries += 1;
        Ok(dest)
    }

    /// Returns (new MBR of `pid`, optional new right sibling `(mbr, page)`,
    /// leaf page holding the inserted entry).
    fn insert_rec(
        &mut self,
        pid: PageId,
        entry: LeafEntry,
        events: &mut Vec<SplitEvent>,
    ) -> Result<(Rect, NodeSplit, PageId)> {
        let node = self.read(pid)?;
        match node {
            RNode::Leaf(mut entries) => {
                let new_tid = entry.tid;
                entries.push(entry);
                if entries.len() <= leaf_capacity(self.page_size) {
                    let n = RNode::Leaf(entries);
                    let mbr = n.mbr();
                    self.write(pid, &n);
                    return Ok((mbr, None, pid));
                }
                let (a, b) = quadratic_split(entries, |e| e.rect);
                let new_pid = self.store.disk.alloc_page(self.file)?;
                let dest = if b.iter().any(|e| e.tid == new_tid) {
                    new_pid
                } else {
                    pid
                };
                events.push(SplitEvent {
                    old_leaf: pid,
                    new_leaf: new_pid,
                    moved: b.iter().map(|e| e.tid).collect(),
                });
                let na = RNode::Leaf(a);
                let nb = RNode::Leaf(b);
                let (ra, rb) = (na.mbr(), nb.mbr());
                self.write(pid, &na);
                self.write(new_pid, &nb);
                self.leaf_pages += 1;
                Ok((ra, Some((rb, new_pid)), dest))
            }
            RNode::Internal(mut children) => {
                // Choose the child needing least enlargement (ties: area).
                let mut best = 0usize;
                let mut best_enl = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                for (i, (r, _)) in children.iter().enumerate() {
                    let enl = r.enlargement(&entry.rect);
                    let area = r.area();
                    if enl < best_enl || (enl == best_enl && area < best_area) {
                        best = i;
                        best_enl = enl;
                        best_area = area;
                    }
                }
                let child_pid = children[best].1;
                let (child_mbr, child_split, dest) = self.insert_rec(child_pid, entry, events)?;
                children[best].0 = child_mbr;
                if let Some((r, p)) = child_split {
                    children.push((r, p));
                }
                if children.len() <= internal_capacity(self.page_size) {
                    let n = RNode::Internal(children);
                    let mbr = n.mbr();
                    self.write(pid, &n);
                    return Ok((mbr, None, dest));
                }
                let (a, b) = quadratic_split(children, |(r, _)| *r);
                let new_pid = self.store.disk.alloc_page(self.file)?;
                let na = RNode::Internal(a);
                let nb = RNode::Internal(b);
                let (ra, rb) = (na.mbr(), nb.mbr());
                self.write(pid, &na);
                self.write(new_pid, &nb);
                self.internal_pages += 1;
                Ok((ra, Some((rb, new_pid)), dest))
            }
        }
    }

    /// Sort-Tile-Recursive bulk load into an **empty** tree. Leaves are
    /// written in tile order, which is also the physical and the
    /// hierarchical-location order (Figure 2's `<2,1>`-style keys).
    pub fn bulk_load(&mut self, mut entries: Vec<LeafEntry>) -> Result<()> {
        assert!(self.is_empty(), "bulk_load requires an empty tree");
        if entries.is_empty() {
            return Ok(());
        }
        let cap = ((leaf_capacity(self.page_size) as f64) * BULK_FILL).max(1.0) as usize;
        let n = entries.len();
        let n_leaves = n.div_ceil(cap);
        let n_slices = (n_leaves as f64).sqrt().ceil() as usize;
        let slice_len = n.div_ceil(n_slices);

        entries.sort_by(|a, b| {
            a.rect
                .center()
                .x
                .partial_cmp(&b.rect.center().x)
                .unwrap()
                .then_with(|| a.tid.cmp(&b.tid))
        });

        let mut leaves: Vec<(Rect, PageId)> = Vec::with_capacity(n_leaves);
        // Reuse the root page allocated at create() for the first leaf so
        // the file stays contiguous.
        let mut first_page = Some(self.root);
        for slice in entries.chunks_mut(slice_len) {
            slice.sort_by(|a, b| {
                a.rect
                    .center()
                    .y
                    .partial_cmp(&b.rect.center().y)
                    .unwrap()
                    .then_with(|| a.tid.cmp(&b.tid))
            });
            for group in slice.chunks(cap) {
                let pid = match first_page.take() {
                    Some(p) => p,
                    None => self.store.disk.alloc_page(self.file)?,
                };
                let node = RNode::Leaf(group.to_vec());
                leaves.push((node.mbr(), pid));
                self.write(pid, &node);
            }
        }
        self.leaf_pages = leaves.len();
        self.entries = n as u64;

        // Build internal levels by packing in order.
        let icap = ((internal_capacity(self.page_size) as f64) * BULK_FILL).max(2.0) as usize;
        let mut level = leaves;
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut next = Vec::with_capacity(level.len().div_ceil(icap));
            for group in level.chunks(icap) {
                let pid = self.store.disk.alloc_page(self.file)?;
                let node = RNode::Internal(group.to_vec());
                next.push((node.mbr(), pid));
                self.write(pid, &node);
                self.internal_pages += 1;
            }
            level = next;
        }
        self.root = level[0].1;
        self.height = height;
        self.store.pool.flush_all();
        Ok(())
    }

    /// Candidate entries whose MBR intersects the query circle; grouped by
    /// the leaf page that held them (the continuous UPI maps leaf pages to
    /// heap pages).
    pub fn query_circle_grouped(
        &self,
        center: Point,
        radius: f64,
    ) -> Result<Vec<(PageId, Vec<LeafEntry>)>> {
        let mut out = Vec::new();
        self.query_rec(self.root, &center, radius, &mut out)?;
        Ok(out)
    }

    /// Flat candidate list for a circle query.
    pub fn query_circle(&self, center: Point, radius: f64) -> Result<Vec<LeafEntry>> {
        Ok(self
            .query_circle_grouped(center, radius)?
            .into_iter()
            .flat_map(|(_, v)| v)
            .collect())
    }

    fn query_rec(
        &self,
        pid: PageId,
        center: &Point,
        radius: f64,
        out: &mut Vec<(PageId, Vec<LeafEntry>)>,
    ) -> Result<()> {
        match self.read(pid)? {
            RNode::Leaf(entries) => {
                let hits: Vec<LeafEntry> = entries
                    .into_iter()
                    .filter(|e| e.rect.intersects_circle(center, radius))
                    .collect();
                if !hits.is_empty() {
                    out.push((pid, hits));
                }
            }
            RNode::Internal(children) => {
                for (r, child) in children {
                    if r.intersects_circle(center, radius) {
                        self.query_rec(child, center, radius, out)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Leaf pages in depth-first (hierarchical location) order — the order
    /// in which the continuous UPI lays out its heap pages.
    pub fn leaf_order(&self) -> Result<Vec<PageId>> {
        let mut out = Vec::with_capacity(self.leaf_pages);
        self.leaf_order_rec(self.root, &mut out)?;
        Ok(out)
    }

    fn leaf_order_rec(&self, pid: PageId, out: &mut Vec<PageId>) -> Result<()> {
        match self.read(pid)? {
            RNode::Leaf(_) => out.push(pid),
            RNode::Internal(children) => {
                for (_, child) in children {
                    self.leaf_order_rec(child, out)?;
                }
            }
        }
        Ok(())
    }

    /// All entries of one leaf page.
    pub fn leaf_entries(&self, pid: PageId) -> Result<Vec<LeafEntry>> {
        match self.read(pid)? {
            RNode::Leaf(entries) => Ok(entries),
            RNode::Internal(_) => panic!("{pid:?} is not a leaf"),
        }
    }

    /// Verify structural invariants (test helper): parent MBRs contain
    /// children, leaf depth is uniform, entry count matches.
    pub fn check_invariants(&self) -> Result<()> {
        let mut leaf_depths = Vec::new();
        let total = self.check_rec(self.root, 1, &mut leaf_depths, None)?;
        assert_eq!(total, self.entries, "entry count mismatch");
        assert!(
            leaf_depths.iter().all(|&d| d == leaf_depths[0]),
            "leaves at unequal depths"
        );
        assert_eq!(leaf_depths[0], self.height, "height mismatch");
        Ok(())
    }

    fn check_rec(
        &self,
        pid: PageId,
        depth: usize,
        leaf_depths: &mut Vec<usize>,
        bound: Option<Rect>,
    ) -> Result<u64> {
        match self.read(pid)? {
            RNode::Leaf(entries) => {
                leaf_depths.push(depth);
                if let Some(b) = bound {
                    for e in &entries {
                        assert!(b.contains(&e.rect), "leaf entry escapes parent MBR");
                    }
                }
                Ok(entries.len() as u64)
            }
            RNode::Internal(children) => {
                assert!(!children.is_empty(), "empty internal node");
                let mut total = 0;
                for (r, child) in children {
                    if let Some(b) = bound {
                        assert!(b.contains(&r), "child MBR escapes parent MBR");
                    }
                    total += self.check_rec(child, depth + 1, leaf_depths, Some(r))?;
                }
                Ok(total)
            }
        }
    }
}

/// Quadratic split of `items` into two groups respecting the minimum fill.
fn quadratic_split<T: Clone>(items: Vec<T>, rect_of: impl Fn(&T) -> Rect) -> (Vec<T>, Vec<T>) {
    let min_fill = ((items.len() as f64) * MIN_FILL).max(1.0) as usize;
    // Pick the pair of seeds wasting the most area together.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let ri = rect_of(&items[i]);
            let rj = rect_of(&items[j]);
            let waste = ri.union(&rj).area() - ri.area() - rj.area();
            if waste > worst {
                worst = waste;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut a = Vec::new();
    let mut b = Vec::new();
    let mut ra = rect_of(&items[s1]);
    let mut rb = rect_of(&items[s2]);
    a.push(items[s1].clone());
    b.push(items[s2].clone());
    let mut rest: Vec<T> = items
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != s1 && *i != s2)
        .map(|(_, t)| t)
        .collect();

    while let Some(item) = rest.pop() {
        // If one group must take everything left to reach min fill, do so.
        if a.len() + rest.len() < min_fill {
            ra = ra.union(&rect_of(&item));
            a.push(item);
            continue;
        }
        if b.len() + rest.len() < min_fill {
            rb = rb.union(&rect_of(&item));
            b.push(item);
            continue;
        }
        let r = rect_of(&item);
        let ea = ra.enlargement(&r);
        let eb = rb.enlargement(&r);
        let pick_a = match ea.partial_cmp(&eb).unwrap() {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => {
                if ra.area() != rb.area() {
                    ra.area() < rb.area()
                } else {
                    a.len() <= b.len()
                }
            }
        };
        if pick_a {
            ra = ra.union(&r);
            a.push(item);
        } else {
            rb = rb.union(&r);
            b.push(item);
        }
    }
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use upi_storage::{DiskConfig, SimDisk};

    fn store() -> Store {
        Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
    }

    fn entry(tid: u64, x: f64, y: f64, r: f64) -> LeafEntry {
        LeafEntry {
            rect: Rect::new(x - r, y - r, x + r, y + r),
            tid,
            aux: [x, y, r / 3.0, r],
        }
    }

    /// Deterministic pseudo-random points in a square.
    fn cloud(n: u64, span: f64) -> Vec<LeafEntry> {
        let mut state = 0xDEADBEEFu64;
        let mut unif = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|tid| {
                let x = unif() * span;
                let y = unif() * span;
                entry(tid, x, y, 5.0)
            })
            .collect()
    }

    fn linear_hits(entries: &[LeafEntry], c: Point, r: f64) -> Vec<u64> {
        let mut v: Vec<u64> = entries
            .iter()
            .filter(|e| e.rect.intersects_circle(&c, r))
            .map(|e| e.tid)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn incremental_insert_queries_match_linear_scan() {
        let mut t = RTree::create(store(), "rt", 4096).unwrap();
        let entries = cloud(3000, 1000.0);
        let mut events = Vec::new();
        for e in &entries {
            t.insert(*e, &mut events).unwrap();
        }
        assert_eq!(t.len(), 3000);
        assert!(t.height() > 1);
        assert!(!events.is_empty(), "3000 entries must split 4KB leaves");
        t.check_invariants().unwrap();
        for (cx, cy, r) in [
            (100.0, 100.0, 50.0),
            (500.0, 500.0, 120.0),
            (0.0, 0.0, 10.0),
        ] {
            let c = Point::new(cx, cy);
            let mut got: Vec<u64> = t
                .query_circle(c, r)
                .unwrap()
                .iter()
                .map(|e| e.tid)
                .collect();
            got.sort_unstable();
            assert_eq!(got, linear_hits(&entries, c, r), "query ({cx},{cy},{r})");
        }
    }

    #[test]
    fn bulk_load_queries_match_linear_scan() {
        let mut t = RTree::create(store(), "rt", 4096).unwrap();
        let entries = cloud(5000, 2000.0);
        t.bulk_load(entries.clone()).unwrap();
        assert_eq!(t.len(), 5000);
        t.check_invariants().unwrap();
        for (cx, cy, r) in [(300.0, 1700.0, 80.0), (1000.0, 1000.0, 300.0)] {
            let c = Point::new(cx, cy);
            let mut got: Vec<u64> = t
                .query_circle(c, r)
                .unwrap()
                .iter()
                .map(|e| e.tid)
                .collect();
            got.sort_unstable();
            assert_eq!(got, linear_hits(&entries, c, r));
        }
    }

    #[test]
    fn bulk_leaves_are_spatially_coherent() {
        let mut t = RTree::create(store(), "rt", 4096).unwrap();
        t.bulk_load(cloud(5000, 2000.0)).unwrap();
        // A small circle query should touch only a few leaves.
        let groups = t
            .query_circle_grouped(Point::new(1000.0, 1000.0), 40.0)
            .unwrap();
        assert!(
            groups.len() <= 6,
            "small query touched {} leaves",
            groups.len()
        );
    }

    #[test]
    fn leaf_order_covers_all_leaves() {
        let mut t = RTree::create(store(), "rt", 4096).unwrap();
        t.bulk_load(cloud(3000, 1000.0)).unwrap();
        let order = t.leaf_order().unwrap();
        assert_eq!(order.len(), t.stats().leaf_pages);
        // Entries across leaves sum to the total.
        let total: usize = order
            .iter()
            .map(|&p| t.leaf_entries(p).unwrap().len())
            .sum();
        assert_eq!(total, 3000);
    }

    #[test]
    fn split_events_describe_movements() {
        let mut t = RTree::create(store(), "rt", 4096).unwrap();
        let mut events = Vec::new();
        let entries = cloud(200, 500.0);
        for e in &entries {
            t.insert(*e, &mut events).unwrap();
        }
        for ev in &events {
            assert_ne!(ev.old_leaf, ev.new_leaf);
            assert!(!ev.moved.is_empty());
            // Moved tids now live in new_leaf... unless a later split moved
            // them again; at minimum the event itself must be well-formed.
        }
    }

    #[test]
    fn empty_tree_queries_are_empty() {
        let t = RTree::create(store(), "rt", 4096).unwrap();
        assert!(t
            .query_circle(Point::new(0.0, 0.0), 100.0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn quadratic_split_respects_min_fill() {
        let items: Vec<LeafEntry> = (0..57)
            .map(|i| entry(i, i as f64 * 10.0, 0.0, 1.0))
            .collect();
        let (a, b) = quadratic_split(items, |e| e.rect);
        assert_eq!(a.len() + b.len(), 57);
        let min = (57_f64 * MIN_FILL) as usize;
        assert!(
            a.len() >= min && b.len() >= min,
            "{} / {}",
            a.len(),
            b.len()
        );
    }
}
