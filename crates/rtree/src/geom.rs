//! 2-D geometry primitives.

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate (meters in the Cartel projection).
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn dist(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Axis-aligned rectangle (MBR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Minimum corner x.
    pub min_x: f64,
    /// Minimum corner y.
    pub min_y: f64,
    /// Maximum corner x.
    pub max_x: f64,
    /// Maximum corner y.
    pub max_y: f64,
}

impl Rect {
    /// Construct; panics if the corners are inverted.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Rect {
        assert!(min_x <= max_x && min_y <= max_y, "inverted rectangle");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// A degenerate rectangle at a point.
    pub fn point(x: f64, y: f64) -> Rect {
        Rect::new(x, y, x, y)
    }

    /// The empty-union identity (inverted infinite rect; `union` fixes it).
    pub fn empty() -> Rect {
        Rect {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// True for the [`Rect::empty`] identity.
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Area (0 for empty).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            (self.max_x - self.min_x) * (self.max_y - self.min_y)
        }
    }

    /// Area increase needed to also cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// True if the rectangles overlap (closed).
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.max_x
            && other.min_x <= self.max_x
            && self.min_y <= other.max_y
            && other.min_y <= self.max_y
    }

    /// True if `self` fully contains `other`.
    pub fn contains(&self, other: &Rect) -> bool {
        self.min_x <= other.min_x
            && self.min_y <= other.min_y
            && self.max_x >= other.max_x
            && self.max_y >= other.max_y
    }

    /// Minimum distance from the rectangle to a point (0 if inside).
    pub fn min_dist(&self, p: &Point) -> f64 {
        let dx = (self.min_x - p.x).max(0.0).max(p.x - self.max_x);
        let dy = (self.min_y - p.y).max(0.0).max(p.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// True if the rectangle intersects the circle `(center, r)`.
    pub fn intersects_circle(&self, center: &Point, r: f64) -> bool {
        !self.is_empty() && self.min_dist(center) <= r
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) / 2.0,
            (self.min_y + self.max_y) / 2.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_area() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 4.0, 3.0);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 4.0, 3.0));
        assert_eq!(a.area(), 4.0);
        assert_eq!(u.area(), 12.0);
        assert_eq!(a.enlargement(&b), 8.0);
    }

    #[test]
    fn empty_identity() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let a = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(e.union(&a), a);
        assert!(!e.intersects(&a));
    }

    #[test]
    fn intersections() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(a.intersects(&Rect::new(2.0, 2.0, 3.0, 3.0)), "corner touch");
        assert!(!a.intersects(&Rect::new(2.1, 0.0, 3.0, 1.0)));
        assert!(a.contains(&Rect::new(0.5, 0.5, 1.5, 1.5)));
        assert!(!a.contains(&Rect::new(0.5, 0.5, 2.5, 1.5)));
    }

    #[test]
    fn min_dist_and_circle() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.min_dist(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.min_dist(&Point::new(5.0, 1.0)), 3.0);
        assert!((a.min_dist(&Point::new(5.0, 6.0)) - 5.0).abs() < 1e-12);
        assert!(a.intersects_circle(&Point::new(5.0, 1.0), 3.0));
        assert!(!a.intersects_circle(&Point::new(5.0, 1.0), 2.9));
    }

    #[test]
    fn point_distance() {
        assert!((Point::new(0.0, 0.0).dist(&Point::new(3.0, 4.0)) - 5.0).abs() < 1e-12);
    }
}
