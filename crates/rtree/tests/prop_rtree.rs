//! Property tests: the R-Tree must agree with a linear scan for arbitrary
//! entry sets and circle queries, under both incremental insertion and STR
//! bulk loading, and its structural invariants must hold throughout.

use proptest::prelude::*;
use std::sync::Arc;
use upi_rtree::{LeafEntry, Point, RTree, Rect};
use upi_storage::{DiskConfig, SimDisk, Store};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

fn entry_strategy(tid: u64) -> impl Strategy<Value = LeafEntry> {
    (0.0f64..1000.0, 0.0f64..1000.0, 1.0f64..40.0).prop_map(move |(x, y, r)| LeafEntry {
        rect: Rect::new(x - r, y - r, x + r, y + r),
        tid,
        aux: [x, y, r / 3.0, r],
    })
}

fn entries_strategy() -> impl Strategy<Value = Vec<LeafEntry>> {
    (1usize..300).prop_flat_map(|n| (0..n as u64).map(entry_strategy).collect::<Vec<_>>())
}

fn linear(entries: &[LeafEntry], c: Point, r: f64) -> Vec<u64> {
    let mut v: Vec<u64> = entries
        .iter()
        .filter(|e| e.rect.intersects_circle(&c, r))
        .map(|e| e.tid)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_matches_linear(
        entries in entries_strategy(),
        qx in -100.0f64..1100.0,
        qy in -100.0f64..1100.0,
        qr in 1.0f64..500.0,
    ) {
        let mut t = RTree::create(store(), "rt", 1024).unwrap();
        let mut events = Vec::new();
        for e in &entries {
            t.insert(*e, &mut events).unwrap();
        }
        t.check_invariants().unwrap();
        let mut got: Vec<u64> = t
            .query_circle(Point::new(qx, qy), qr)
            .unwrap()
            .iter()
            .map(|e| e.tid)
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, linear(&entries, Point::new(qx, qy), qr));
    }

    #[test]
    fn bulk_matches_linear(
        entries in entries_strategy(),
        qx in 0.0f64..1000.0,
        qy in 0.0f64..1000.0,
        qr in 1.0f64..400.0,
    ) {
        let mut t = RTree::create(store(), "rt", 1024).unwrap();
        t.bulk_load(entries.clone()).unwrap();
        t.check_invariants().unwrap();
        let mut got: Vec<u64> = t
            .query_circle(Point::new(qx, qy), qr)
            .unwrap()
            .iter()
            .map(|e| e.tid)
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, linear(&entries, Point::new(qx, qy), qr));
        // Leaf order must enumerate every entry exactly once.
        let total: usize = t
            .leaf_order()
            .unwrap()
            .iter()
            .map(|&p| t.leaf_entries(p).unwrap().len())
            .sum();
        prop_assert_eq!(total, entries.len());
    }

    #[test]
    fn split_events_partition_tids(entries in entries_strategy()) {
        // Whenever a leaf splits, the moved set must be a strict non-empty
        // subset of the leaf's entries.
        let mut t = RTree::create(store(), "rt", 1024).unwrap();
        let mut events = Vec::new();
        for e in &entries {
            t.insert(*e, &mut events).unwrap();
        }
        for ev in &events {
            prop_assert!(!ev.moved.is_empty());
            prop_assert_ne!(ev.old_leaf, ev.new_leaf);
        }
    }
}
