//! Cartel-style vehicle tracking: the paper's continuous-distribution
//! scenario (§5).
//!
//! Cars on a road grid report GPS positions with constrained-Gaussian
//! uncertainty. A Continuous UPI (R-Tree + synchronized heap clustered in
//! hierarchical leaf order) answers circle queries and — through a
//! segment secondary index — road-segment queries, against the secondary
//! U-Tree / unclustered-heap baselines.
//!
//! Run with: `cargo run --release -p upi-examples --example cartel_tracking`

use std::sync::Arc;

use upi::{
    ContinuousConfig, ContinuousSecondary, ContinuousUpi, Pii, SecondaryUTree, UnclusteredHeap,
};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_workloads::cartel::{self, observation_fields, CartelConfig};

fn timed<T>(store: &Store, label: &str, f: impl FnOnce() -> T) -> T {
    store.go_cold();
    let t0 = store.disk.clock_ms();
    let out = f();
    println!("  {label}: {:.0} simulated ms", store.disk.clock_ms() - t0);
    out
}

fn main() {
    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let cfg = CartelConfig {
        n_observations: 60_000,
        ..CartelConfig::default()
    };
    println!(
        "simulating {} GPS observations from {} cars on a {}x{} road grid ...",
        cfg.n_observations, cfg.n_cars, cfg.grid, cfg.grid
    );
    let data = cartel::generate(&cfg);

    // Continuous UPI + segment index over it.
    let mut cupi = ContinuousUpi::create(
        store.clone(),
        "cars.cupi",
        observation_fields::LOCATION,
        ContinuousConfig {
            node_page: 4096,
            heap_page: 16384,
        },
    )
    .unwrap();
    cupi.bulk_load(&data.observations).unwrap();
    let mut seg_on_cupi =
        ContinuousSecondary::create(store.clone(), "cars.seg", observation_fields::SEGMENT, 8192)
            .unwrap();
    seg_on_cupi.bulk_load(&cupi, &data.observations).unwrap();

    // Baselines: unclustered heap + secondary U-Tree + PII on segment.
    let mut heap = UnclusteredHeap::create(store.clone(), "cars.heap", 8192).unwrap();
    heap.bulk_load(&data.observations).unwrap();
    let mut utree = SecondaryUTree::create(
        store.clone(),
        "cars.utree",
        observation_fields::LOCATION,
        4096,
    )
    .unwrap();
    utree.bulk_load(&data.observations).unwrap();
    let mut seg_on_heap = Pii::create(
        store.clone(),
        "cars.seg.heap",
        observation_fields::SEGMENT,
        8192,
    )
    .unwrap();
    seg_on_heap.bulk_load(&data.observations).unwrap();

    let rt = cupi.rtree_stats();
    println!(
        "continuous UPI: {} R-Tree leaves over {} tuples, height {}",
        rt.leaf_pages, rt.entries, rt.height
    );

    // Query 4: who is within 400 m of the central intersection?
    let (qx, qy) = data.query_center();
    println!("\nQuery 4: WHERE Distance(location, center) <= 400m (QT=0.5)");
    let a = timed(&store, "secondary U-Tree", || {
        utree.query_circle(&heap, qx, qy, 400.0, 0.5).unwrap()
    });
    let b = timed(&store, "continuous UPI  ", || {
        cupi.query_circle(qx, qy, 400.0, 0.5).unwrap()
    });
    assert_eq!(a.len(), b.len());
    println!("  -> {} observations qualify", b.len());
    if let Some(top) = b.first() {
        let g = top.tuple.point(observation_fields::LOCATION);
        println!(
            "  most confident: tuple {} near ({:.0}, {:.0}) at {:.0}%",
            top.tuple.id.0,
            g.cx,
            g.cy,
            top.confidence * 100.0
        );
    }

    // Query 5: everything observed on the busiest road segment.
    let seg = data.busy_segment();
    println!("\nQuery 5: WHERE Segment={seg} (QT=0.4)");
    let c = timed(&store, "segment index on unclustered heap", || {
        seg_on_heap.ptq(&heap, seg, 0.4).unwrap()
    });
    let d = timed(&store, "segment index on continuous UPI  ", || {
        seg_on_cupi.ptq(&cupi, seg, 0.4).unwrap()
    });
    assert_eq!(c.len(), d.len());
    println!("  -> {} observations qualify", d.len());
    println!(
        "\n(Location and road segment are correlated, so the continuous \
         UPI's spatial clustering also accelerates the segment index — the \
         Figure 8 effect.)"
    );
}
