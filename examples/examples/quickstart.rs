//! Quickstart: the paper's running example (Tables 1–3) end to end,
//! through the planner-first facade.
//!
//! Builds the three-author uncertain table as an `UncertainDb` session
//! clustered with a UPI on `Institution` (cutoff C = 10%) and runs
//! Query 1:
//!
//! ```sql
//! SELECT * FROM Author WHERE Institution = MIT (confidence >= QT)
//! ```
//!
//! Every query goes `PtqQuery` → `plan()` → streaming execution; the
//! session builds the planner catalog from the table's live structures,
//! so the access path (heap run, cutoff merge, full scan …) is a
//! cost-model decision, not a hard-wired call.
//!
//! Run with: `cargo run -p upi-examples --example quickstart`

use std::sync::Arc;

use upi::{TableLayout, UpiConfig};
use upi_query::{PtqQuery, UncertainDb};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

const BROWN: u64 = 0;
const MIT: u64 = 1;
const UCB: u64 = 2;
const UTOKYO: u64 = 3;

fn institution_name(id: u64) -> &'static str {
    match id {
        BROWN => "Brown",
        MIT => "MIT",
        UCB => "UCB",
        UTOKYO => "U.Tokyo",
        _ => "?",
    }
}

fn author(id: u64, name: &str, exist: f64, alts: Vec<(u64, f64)>) -> Tuple {
    Tuple::new(
        TupleId(id),
        exist,
        vec![
            Field::Certain(Datum::Str(name.to_string())),
            Field::Discrete(DiscretePmf::new(alts)),
        ],
    )
}

fn main() {
    // One simulated machine: Table 6's 10k RPM disk + a small buffer pool.
    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 1 << 20);

    // Table 1: the uncertain Author table, clustered on Institution
    // (field 1) with cutoff threshold C = 10%.
    let schema = Schema::new(vec![
        ("name", FieldKind::Str),
        ("institution", FieldKind::Discrete),
    ]);
    let mut db = UncertainDb::create(
        store.clone(),
        "authors",
        schema,
        1,
        TableLayout::Upi(UpiConfig {
            cutoff: 0.10,
            ..UpiConfig::default()
        }),
    )
    .unwrap();
    db.load(&[
        author(1, "Alice", 0.9, vec![(BROWN, 0.8), (MIT, 0.2)]),
        author(2, "Bob", 1.0, vec![(MIT, 0.95), (UCB, 0.05)]),
        author(3, "Carol", 0.8, vec![(BROWN, 0.6), (UTOKYO, 0.4)]),
    ])
    .unwrap();

    let upi = db.table().as_upi().unwrap();
    println!("UPI heap entries (Table 3): {}", upi.heap_stats().entries);
    println!("Cutoff index entries:       {}", upi.cutoff_index().len());
    println!();

    // Query 1 at two thresholds — planned, then streamed.
    for qt in [0.1, 0.5] {
        let results = db.ptq(MIT, qt).unwrap();
        println!("Query 1: WHERE Institution=MIT, QT = {qt}");
        for r in &results {
            let name = match &r.tuple.fields[0] {
                Field::Certain(Datum::Str(s)) => s.clone(),
                _ => unreachable!(),
            };
            println!("  ({name}, confidence = {:.0}%)", r.confidence * 100.0);
        }
        println!();
    }

    // What did the planner actually decide? explain() shows the chosen
    // operator tree and every priced candidate.
    println!(
        "{}",
        db.explain(&PtqQuery::eq(1, MIT).with_qt(0.1)).unwrap()
    );

    // Bob's UCB alternative (5% < C) lives in the cutoff index: visible
    // only to low-threshold queries, via one extra pointer dereference.
    let ucb_low = db.ptq(UCB, 0.01).unwrap();
    let ucb_high = db.ptq(UCB, 0.10).unwrap();
    println!(
        "WHERE Institution=UCB: QT=0.01 finds {} tuple(s) via the cutoff \
         index; QT=0.10 finds {}",
        ucb_low.len(),
        ucb_high.len()
    );

    // Top-2 most confident Brown affiliates: the confidence-ordered
    // merge lets the sink stop the run's I/O after two rows.
    let top = db.top_k(BROWN, 2).unwrap();
    println!("\nTop-2 by confidence at Brown:");
    for r in &top {
        println!(
            "  tuple {} @ {} ({:.0}%)",
            r.tuple.id.0,
            institution_name(BROWN),
            r.confidence * 100.0
        );
    }

    println!(
        "\nSimulated I/O spent by this session: {:.1} ms",
        store.disk.clock_ms()
    );
}
