//! Cost-driven background maintenance: the LSM-style merge scheduler.
//!
//! A fractured UPI deteriorates as DML accumulates fractures — every
//! query pays a k-way merge across the whole chain. Instead of the
//! paper's stop-the-world §4.3 merge, [`UncertainDb::maintenance_tick`]
//! prices bounded incremental compaction steps (fold the oldest
//! components into main, or compact a run of small fractures) against
//! the traffic the session actually observed, and commits a step only
//! when its per-query savings pay for its device cost within the
//! policy horizon. An idle table never pays for maintenance; a busy
//! one converges back to the merged floor in bounded steps.
//!
//! Run with: `cargo run --release -p upi-examples --example maintenance`

use std::sync::Arc;

use upi::{FracturedConfig, TableLayout};
use upi_query::{PtqQuery, UncertainDb};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

const VALUES: u64 = 4;

fn row(id: u64) -> Tuple {
    let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
    Tuple::new(
        TupleId(id),
        1.0,
        vec![
            Field::Certain(Datum::Str(format!("payload-{id}-{}", "x".repeat(120)))),
            Field::Discrete(DiscretePmf::new(vec![(
                id % VALUES,
                0.55 + (h % 4000) as f64 / 10_000.0,
            )])),
        ],
    )
}

fn main() {
    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let schema = Schema::new(vec![
        ("payload", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ]);
    let mut db = UncertainDb::create(
        store.clone(),
        "maintained",
        schema,
        1,
        TableLayout::FracturedUpi(FracturedConfig {
            buffer_ops: 0,
            ..FracturedConfig::default()
        }),
    )
    .unwrap();
    let n_rows = 6_000u64;
    let initial: Vec<Tuple> = (0..n_rows).map(row).collect();
    db.load(&initial).unwrap();
    db.enable_durability().unwrap();
    println!(
        "loaded {n_rows} rows, durable; policy: {:?}\n",
        db.maintenance_policy()
    );

    // A tick on a freshly opened session declines: no traffic has been
    // observed yet, so no step can pay for itself.
    assert!(db.maintenance_tick().unwrap().is_none());
    println!("tick before any traffic -> deferred (observed qps is 0)\n");

    // Deterioration workload: each batch inserts 5% of the table,
    // flushes one fracture, then serves a cold query pass — the traffic
    // the policy prices steps against.
    let mut next_id = n_rows;
    for batch in 1..=6 {
        for _ in 0..n_rows / 20 {
            db.insert_tuple(&row(next_id)).unwrap();
            next_id += 1;
        }
        db.flush().unwrap();

        store.go_cold();
        for v in 0..VALUES {
            db.query(&PtqQuery::eq(1, v).with_qt(0.5)).unwrap();
        }

        let chain = db.table().as_fractured().unwrap().n_fractures() + 1;
        match db.maintenance_tick().unwrap() {
            Some(report) => println!(
                "batch {batch}: chain {chain} -> step merged {} components \
                 ({:.0} ms device, {:.1} qps observed, saves {:.1} ms/query)",
                report.components,
                report.device_ms,
                report.observed_qps,
                report.savings_per_query_ms
            ),
            None => println!("batch {batch}: chain {chain} -> deferred (no step profitable yet)"),
        }
    }

    // One more deterioration round, then drain whatever is profitable
    // and seal it: on a durable table, `maintain` checkpoints after the
    // last step, which also rotates the WAL onto a fresh generation and
    // retires the old one.
    for _ in 0..n_rows / 20 {
        db.insert_tuple(&row(next_id)).unwrap();
        next_id += 1;
    }
    db.flush().unwrap();
    let summary = db.maintain().unwrap();
    println!(
        "\nmaintain(): {} step(s), {} components compacted, {:.0} ms, checkpoint {:?}",
        summary.steps, summary.components_compacted, summary.device_ms, summary.checkpoint
    );
    let final_chain = db.table().as_fractured().unwrap().n_fractures() + 1;
    let m = db.metrics();
    println!(
        "final chain {final_chain} component(s); session counters: merge_steps={} \
         components_compacted={} maintenance_device_ms={:.0}",
        m.merge_steps, m.components_compacted, m.maintenance_device_ms
    );
    assert!(m.merge_steps > 0, "the workload must trigger maintenance");
}
