//! DBLP-style analytics: the paper's motivating OLAP scenario.
//!
//! Generates a synthetic uncertain-DBLP dataset (Zipf-skewed institutions,
//! long-tailed alternative lists, country correlated with institution),
//! then answers the three evaluation queries with both a PII (secondary
//! index over an unclustered heap — prior work) and a UPI, reporting
//! simulated disk time for each.
//!
//! Run with: `cargo run --release -p upi-examples --example dblp_analytics`

use std::sync::Arc;

use upi::exec::group_count;
use upi::{DiscreteUpi, Pii, UnclusteredHeap, UpiConfig};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_workloads::dblp::{self, author_fields, publication_fields, DblpConfig};

fn timed<T>(store: &Store, label: &str, f: impl FnOnce() -> T) -> T {
    store.go_cold();
    let t0 = store.disk.clock_ms();
    let out = f();
    println!("  {label}: {:.0} simulated ms", store.disk.clock_ms() - t0);
    out
}

fn main() {
    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let cfg = DblpConfig {
        n_authors: 30_000,
        n_publications: 60_000,
        payload_bytes: 256,
        ..DblpConfig::default()
    };
    println!(
        "generating {} authors / {} publications ...",
        cfg.n_authors, cfg.n_publications
    );
    let data = dblp::generate(&cfg);
    let mit = data.popular_institution();
    let japan = data.query_country();

    // --- Author table: unclustered + PII vs UPI --------------------------
    let mut heap = UnclusteredHeap::create(store.clone(), "author.heap", 8192).unwrap();
    heap.bulk_load(&data.authors).unwrap();
    let mut pii = Pii::create(
        store.clone(),
        "author.pii",
        author_fields::INSTITUTION,
        8192,
    )
    .unwrap();
    pii.bulk_load(&data.authors).unwrap();
    let mut upi = DiscreteUpi::create(
        store.clone(),
        "author.upi",
        author_fields::INSTITUTION,
        UpiConfig::default(),
    )
    .unwrap();
    upi.bulk_load(&data.authors).unwrap();

    println!("\nQuery 1: SELECT * FROM Author WHERE Institution=MIT (QT=0.3)");
    let a = timed(&store, "PII on unclustered heap", || {
        pii.ptq(&heap, mit, 0.3).unwrap()
    });
    let b = timed(&store, "UPI                    ", || {
        upi.ptq(mit, 0.3).unwrap()
    });
    assert_eq!(a.len(), b.len());
    println!("  -> {} qualifying authors", b.len());

    // --- Publication table with a Country secondary ----------------------
    let mut pub_heap = UnclusteredHeap::create(store.clone(), "pub.heap", 8192).unwrap();
    pub_heap.bulk_load(&data.publications).unwrap();
    let mut pub_pii_inst = Pii::create(
        store.clone(),
        "pub.pii.inst",
        publication_fields::INSTITUTION,
        8192,
    )
    .unwrap();
    pub_pii_inst.bulk_load(&data.publications).unwrap();
    let mut pub_pii_country = Pii::create(
        store.clone(),
        "pub.pii.country",
        publication_fields::COUNTRY,
        8192,
    )
    .unwrap();
    pub_pii_country.bulk_load(&data.publications).unwrap();
    let mut pub_upi = DiscreteUpi::create(
        store.clone(),
        "pub.upi",
        publication_fields::INSTITUTION,
        UpiConfig::default(),
    )
    .unwrap();
    pub_upi.add_secondary(publication_fields::COUNTRY).unwrap();
    pub_upi.bulk_load(&data.publications).unwrap();

    println!("\nQuery 2: journal COUNT(*) WHERE Institution=MIT (QT=0.3)");
    let g1 = timed(&store, "PII on unclustered heap", || {
        group_count(
            &pub_pii_inst.ptq(&pub_heap, mit, 0.3).unwrap(),
            publication_fields::JOURNAL,
        )
        .unwrap()
    });
    let g2 = timed(&store, "UPI                    ", || {
        group_count(&pub_upi.ptq(mit, 0.3).unwrap(), publication_fields::JOURNAL).unwrap()
    });
    assert_eq!(g1, g2);
    println!("  -> {} journals in the answer", g2.len());

    println!("\nQuery 3: journal COUNT(*) WHERE Country=Japan (QT=0.3)");
    let g3 = timed(&store, "PII on unclustered heap ", || {
        group_count(
            &pub_pii_country.ptq(&pub_heap, japan, 0.3).unwrap(),
            publication_fields::JOURNAL,
        )
        .unwrap()
    });
    let g4 = timed(&store, "UPI secondary (plain)   ", || {
        group_count(
            &pub_upi.ptq_secondary(0, japan, 0.3, false).unwrap(),
            publication_fields::JOURNAL,
        )
        .unwrap()
    });
    let g5 = timed(&store, "UPI secondary (tailored)", || {
        group_count(
            &pub_upi.ptq_secondary(0, japan, 0.3, true).unwrap(),
            publication_fields::JOURNAL,
        )
        .unwrap()
    });
    assert_eq!(g3, g4);
    assert_eq!(g4, g5);
    println!("  -> {} journals in the answer", g5.len());
    println!(
        "\n(The correlated Country≈Institution attributes are what make the \
         tailored access fast: overlapping pointers collapse onto few heap \
         regions — §3.2 of the paper.)"
    );
}
