//! Cost-model-driven tuning (§6.3 and §4.2–4.3 of the paper).
//!
//! Demonstrates the two administrative decisions the paper's cost models
//! support:
//!
//! 1. **Choosing the cutoff threshold `C`** — "an administrator collects
//!    query workloads …, figures out the acceptable size of her database
//!    …, and picks a value of C that yields acceptable database size and
//!    also achieves a tolerable average query runtime."
//! 2. **Scheduling fracture merges** — "based on this estimate and the
//!    speed of database size growth, a database administrator can schedule
//!    merging of UPIs to keep the required query performance."
//!
//! Run with: `cargo run --release -p upi-examples --example adaptive_tuning`

use std::sync::Arc;

use upi::cost::model_for_fractured;
use upi::{DiscreteUpi, FracturedConfig, FracturedUpi, TuningAdvisor, UpiConfig, WorkloadProfile};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_workloads::dblp::{self, author_fields, DblpConfig};

fn main() {
    let cfg = DblpConfig {
        n_authors: 20_000,
        payload_bytes: 128,
        ..DblpConfig::default()
    };
    let data = dblp::generate(&cfg);
    let key = data.popular_institution();

    // The workload the administrator observed: mostly selective PTQs, a
    // few deep low-threshold scans.
    let mut workload = WorkloadProfile::new();
    for _ in 0..55 {
        workload.record(0.30);
    }
    for _ in 0..30 {
        workload.record(0.15);
    }
    for _ in 0..15 {
        workload.record(0.05);
    }
    println!(
        "observed workload: {} queries, {:.0}% below QT=0.1",
        workload.len(),
        workload.fraction_below(0.1) * 100.0
    );

    // Statistics come from the live index (any cutoff works for stats
    // collection; the advisor extrapolates across candidates).
    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let mut upi = DiscreteUpi::create(
        store.clone(),
        "live",
        author_fields::INSTITUTION,
        UpiConfig::default(),
    )
    .unwrap();
    upi.bulk_load(&data.authors).unwrap();

    let budget_bytes = 40u64 << 20;
    let candidates = [0.0, 0.05, 0.1, 0.2, 0.3];
    let (choices, pick) = TuningAdvisor.evaluate_cutoffs(
        store.disk.config(),
        &upi,
        key,
        &workload,
        budget_bytes,
        &candidates,
    );
    println!("\nC\test_DB_bytes\test_query_ms\tfits_budget");
    for ch in &choices {
        println!(
            "{:.2}\t{}\t{:.0}\t{}",
            ch.cutoff, ch.est_bytes, ch.est_query_ms, ch.fits_budget
        );
    }
    let chosen_c = choices[pick].cutoff;
    println!(
        "\n-> chosen C = {chosen_c} (expected workload query time {:.0} ms \
         within the {budget_bytes}-byte budget)\n",
        choices[pick].est_query_ms
    );

    // ---- Merge scheduling ------------------------------------------------
    // Keep inserting; merge as soon as the estimated Query-1 time exceeds
    // an SLO, using the §6.2 fracture cost model.
    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let mut f = FracturedUpi::create(
        store.clone(),
        "adaptive",
        author_fields::INSTITUTION,
        &[],
        FracturedConfig {
            upi: UpiConfig {
                cutoff: chosen_c,
                ..UpiConfig::default()
            },
            buffer_ops: 0,
        },
    )
    .unwrap();
    f.load_initial(&data.authors).unwrap();

    let slo_ms = 700.0;
    println!("merge scheduling with an SLO of {slo_ms} ms on Query 1 (QT=0.15):");
    let mut next_id = data.authors.len() as u64;
    for batch in 1..=12 {
        let new = data.more_authors(data.authors.len() / 10, next_id, batch);
        next_id += new.len() as u64;
        for t in new {
            f.insert(t).unwrap();
        }
        f.flush().unwrap();
        let (merge_now, est, merge_cost) =
            TuningAdvisor.should_merge(store.disk.config(), &f, key, 0.15, slo_ms);
        if merge_now {
            println!(
                "  batch {batch:2}: est {est:.0} ms > SLO -> merge \
                 (predicted cost {merge_cost:.0} ms, {} fractures)",
                f.n_fractures()
            );
            f.merge().unwrap();
        } else {
            println!(
                "  batch {batch:2}: est {est:.0} ms ({} fractures) — ok",
                f.n_fractures()
            );
        }
    }
    let _ = model_for_fractured(store.disk.config(), &f);
    println!(
        "\nfinal state: {} fractures, {} live tuples, {} bytes",
        f.n_fractures(),
        f.n_live_tuples(),
        f.total_bytes()
    );
}
