//! Session metrics dump: a mixed PTQ workload through an `UncertainDb`
//! session, then the observability surface end to end —
//!
//! 1. **EXPLAIN ANALYZE** for one query: the chosen plan with the
//!    executed span tree (per-operator rows / decodes / pages / device
//!    ms next to the planner's estimates, flagged `!` beyond 2x);
//! 2. the session **metrics snapshot**: per-path-kind query counts and
//!    device-ms latency quantiles, pool hit ratio, read-ahead
//!    efficiency, calibration scales and refit count, misestimation
//!    quantiles — as the human table and as the machine JSON (the same
//!    shape `planner_vs_forced` commits as `BENCH_metrics.json`).
//!
//! Run with: `cargo run --release -p upi-examples --example metrics_dump`

use std::sync::Arc;

use upi::{TableLayout, UpiConfig};
use upi_query::{PtqQuery, UncertainDb};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_workloads::dblp::{self, author_fields, DblpConfig, DblpData};

fn main() {
    let cfg = DblpConfig {
        n_authors: 8_000,
        n_publications: 1_000,
        payload_bytes: 64,
        ..DblpConfig::default()
    };
    let data = dblp::generate(&cfg);
    let mit = data.popular_institution();
    let rare = data.selective_institution();

    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 1 << 20);
    let mut db = UncertainDb::create(
        store.clone(),
        "authors",
        DblpData::author_schema(),
        author_fields::INSTITUTION,
        TableLayout::Upi(UpiConfig::default()),
    )
    .unwrap();
    let country_idx = db.add_secondary(author_fields::COUNTRY).unwrap();
    db.load(&data.authors).unwrap();

    // A mixed workload: every query lands its own attributed device time
    // and I/O on the session registry, keyed by the chosen path kind.
    for qt in [0.1, 0.3, 0.5, 0.7, 0.9] {
        db.ptq(mit, qt).unwrap();
        db.ptq(rare, qt).unwrap();
    }
    db.ptq_range(0, 10, 0.3).unwrap();
    db.top_k(mit, 5).unwrap();
    for qt in [0.2, 0.6] {
        db.ptq_secondary(country_idx, data.query_country(), qt)
            .unwrap();
    }

    // One refit pass over the samples those executions recorded; the
    // post-refit scales land in the snapshot below.
    let refit = db.recalibrate();
    println!("recalibrate: {} path kind(s) adjusted\n", refit.len());

    // A few more queries under calibrated pricing.
    db.ptq(mit, 0.5).unwrap();
    db.top_k(mit, 3).unwrap();

    // EXPLAIN ANALYZE: the plan rendering plus the executed span tree.
    let (_, text) = db
        .explain_analyze(
            &PtqQuery::eq(author_fields::INSTITUTION, mit)
                .with_qt(0.5)
                .with_top_k(5),
        )
        .unwrap();
    println!("{text}");

    let snap = db.metrics();
    println!("{}", snap.render());
    println!("--- MetricsSnapshot JSON ---");
    println!("{}", snap.to_json());
}
