//! Cost-based planner walkthrough: build the paper's Author table three
//! ways (unclustered heap + PII, and a UPI with a country secondary),
//! then let `upi-query` plan Queries 1 and 3 and print the `explain()`
//! rendering — the chosen operator tree plus every priced candidate.
//!
//! Run: `cargo run -p upi-examples --example planner_explain`

use std::sync::Arc;

use upi::{DiscreteUpi, Pii, UnclusteredHeap, UpiConfig};
use upi_query::{Catalog, PtqQuery};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_workloads::dblp::{self, publication_fields, DblpConfig};

fn main() {
    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let data = dblp::generate(&DblpConfig {
        n_authors: 5_000,
        n_publications: 20_000,
        ..DblpConfig::default()
    });

    let mut heap = UnclusteredHeap::create(store.clone(), "pub.heap", 8192).unwrap();
    heap.bulk_load(&data.publications).unwrap();
    let mut pii_inst = Pii::create(
        store.clone(),
        "pub.pii_inst",
        publication_fields::INSTITUTION,
        8192,
    )
    .unwrap();
    pii_inst.bulk_load(&data.publications).unwrap();
    let mut pii_country = Pii::create(
        store.clone(),
        "pub.pii_country",
        publication_fields::COUNTRY,
        8192,
    )
    .unwrap();
    pii_country.bulk_load(&data.publications).unwrap();
    let mut upi = DiscreteUpi::create(
        store.clone(),
        "pub.upi",
        publication_fields::INSTITUTION,
        UpiConfig::default(),
    )
    .unwrap();
    upi.add_secondary(publication_fields::COUNTRY).unwrap();
    upi.bulk_load(&data.publications).unwrap();

    // Registering the pool threads per-query hit/miss/read-ahead
    // counters through execution into the explain rendering.
    let catalog = Catalog::new(store.disk.config())
        .with_upi(&upi)
        .with_heap(&heap)
        .with_pii(&pii_inst)
        .with_pii(&pii_country)
        .with_pool(&store.pool);

    // Query 1/2 shape: point PTQ on the clustered attribute.
    let mit = data.popular_institution();
    let q1 = PtqQuery::eq(publication_fields::INSTITUTION, mit)
        .with_qt(0.3)
        .with_group_count(publication_fields::JOURNAL);
    let plan = q1.plan(&catalog).unwrap();
    store.go_cold();
    let out = plan.execute(&catalog).unwrap();
    println!("{}", plan.explain_with_io(out.io.as_ref()));
    println!("-> {} journal groups\n", out.len());

    // Query 3 shape: point PTQ on the secondary attribute.
    let japan = data.query_country();
    let q3 = PtqQuery::eq(publication_fields::COUNTRY, japan)
        .with_qt(0.3)
        .with_group_count(publication_fields::JOURNAL);
    let plan = q3.plan(&catalog).unwrap();
    store.go_cold();
    let out = plan.execute(&catalog).unwrap();
    println!("{}", plan.explain_with_io(out.io.as_ref()));
    println!("-> {} journal groups\n", out.len());

    // Top-k through the same engine: the confidence-ordered merge lets
    // the sink stop after 5 rows, so compare its page traffic above.
    let topk = PtqQuery::eq(publication_fields::INSTITUTION, mit).with_top_k(5);
    let plan = topk.plan(&catalog).unwrap();
    store.go_cold();
    let out = plan.execute(&catalog).unwrap();
    println!("{}", plan.explain_with_io(out.io.as_ref()));
    for r in out.rows {
        println!("  tid {:>6}  confidence {:.3}", r.tuple.id.0, r.confidence);
    }
}
