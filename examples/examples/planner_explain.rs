//! Cost-based planner walkthrough through the planner-first facade:
//! load the paper's DBLP publication table twice — once as an
//! unclustered heap + PII baseline, once UPI-clustered with a country
//! secondary — and let each `UncertainDb` session plan Queries 1 and 3.
//! The same logical `PtqQuery` picks a different physical story per
//! layout, and `explain_with_io` shows the chosen operator tree, the
//! planner's prefetch hint, every priced candidate, and the buffer-pool
//! traffic the execution actually caused.
//!
//! Run: `cargo run -p upi-examples --example planner_explain`

use std::sync::Arc;

use upi::{TableLayout, UpiConfig};
use upi_query::{PtqQuery, UncertainDb};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_workloads::dblp::{self, publication_fields, DblpConfig, DblpData};

fn main() {
    let data = dblp::generate(&DblpConfig {
        n_authors: 5_000,
        n_publications: 20_000,
        ..DblpConfig::default()
    });

    // Two sessions over the same rows: the evaluation's baseline layout
    // and the UPI layout. Each session registers its own structures (and
    // the shared buffer pool) in the planner catalog internally.
    let baseline_store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let mut baseline = UncertainDb::create(
        baseline_store.clone(),
        "pub_baseline",
        DblpData::publication_schema(),
        publication_fields::INSTITUTION,
        TableLayout::Unclustered,
    )
    .unwrap();
    baseline.add_secondary(publication_fields::COUNTRY).unwrap();
    baseline.load(&data.publications).unwrap();

    let upi_store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let mut clustered = UncertainDb::create(
        upi_store.clone(),
        "pub_upi",
        DblpData::publication_schema(),
        publication_fields::INSTITUTION,
        TableLayout::Upi(UpiConfig::default()),
    )
    .unwrap();
    clustered
        .add_secondary(publication_fields::COUNTRY)
        .unwrap();
    clustered.load(&data.publications).unwrap();

    let mit = data.popular_institution();
    let japan = data.query_country();

    // Query 1/2 shape: point PTQ on the clustered attribute, aggregated
    // per journal. Query 3 shape: the same through the secondary
    // attribute.
    let q1 = PtqQuery::eq(publication_fields::INSTITUTION, mit)
        .with_qt(0.3)
        .with_group_count(publication_fields::JOURNAL);
    let q3 = PtqQuery::eq(publication_fields::COUNTRY, japan)
        .with_qt(0.3)
        .with_group_count(publication_fields::JOURNAL);

    for (name, db, store) in [
        ("unclustered + PII", &baseline, &baseline_store),
        ("UPI-clustered", &clustered, &upi_store),
    ] {
        println!("=== layout: {name} ===\n");
        for (label, q) in [("Query 1", &q1), ("Query 3", &q3)] {
            store.go_cold();
            let (out, text) = db.run_explained(q).unwrap();
            println!("--- {label}\n{text}-> {} journal groups\n", out.len());
        }
    }

    // Top-k through the same engine: the confidence-ordered merge lets
    // the sink stop after 5 rows — compare the buffer-pool line against
    // the full Query 1 run above.
    let topk = PtqQuery::eq(publication_fields::INSTITUTION, mit).with_top_k(5);
    upi_store.go_cold();
    let (out, text) = clustered.run_explained(&topk).unwrap();
    println!("=== top-5, UPI-clustered ===\n\n{text}");
    for r in out.rows {
        println!("  tid {:>6}  confidence {:.3}", r.tuple.id.0, r.confidence);
    }
}
