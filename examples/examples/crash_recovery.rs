//! Crash recovery: the durability subsystem end to end.
//!
//! Builds a durable fractured-UPI session (WAL + group commit), runs a
//! DML workload with a checkpoint in the middle, then pulls the plug with
//! a `FaultPlan` that kills the simulated device mid-operation. Recovery
//! reads the log back, rebuilds every structure from the last sealed
//! checkpoint plus the durable log suffix, restores the calibrated cost
//! model, and reopens the session writable.
//!
//! Run with: `cargo run -p upi-examples --example crash_recovery`

use std::sync::Arc;

use upi::{FracturedConfig, TableLayout};
use upi_query::UncertainDb;
use upi_storage::{DiskConfig, FaultPlan, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

fn reading(id: u64, sensor: u64, p: f64) -> Tuple {
    Tuple::new(
        TupleId(id),
        0.95,
        vec![
            Field::Certain(Datum::Str(format!("reading-{id}"))),
            Field::Discrete(DiscretePmf::new(vec![
                (sensor, p),
                (sensor + 16, (1.0 - p) / 2.0),
            ])),
        ],
    )
}

fn main() {
    // Group commit: appends buffer in RAM and hit the platter in batches
    // of 8, each sealed by one fsync-priced barrier.
    let cfg = DiskConfig {
        wal_group_ops: 8,
        ..DiskConfig::default()
    };
    let store = Store::new(Arc::new(SimDisk::new(cfg)), 4 << 20);
    let schema = Schema::new(vec![
        ("tag", FieldKind::Str),
        ("sensor", FieldKind::Discrete),
    ]);
    let mut db = UncertainDb::create(
        store.clone(),
        "readings",
        schema,
        1,
        TableLayout::FracturedUpi(FracturedConfig {
            buffer_ops: 16,
            ..FracturedConfig::default()
        }),
    )
    .unwrap();

    let lsn = db.enable_durability().unwrap();
    println!("durability on: WAL created, first checkpoint sealed at lsn {lsn:?}");

    // A DML workload: 300 inserts, a checkpoint at the halfway mark, then
    // updates and deletes that will only partially survive the crash.
    for i in 0..150u64 {
        db.insert_tuple(&reading(i, i % 12, 0.8)).unwrap();
    }
    let ckpt = db.checkpoint().unwrap();
    println!("checkpoint sealed at lsn {ckpt:?} (150 rows snapshotted)");
    for i in 150..300u64 {
        db.insert_tuple(&reading(i, i % 12, 0.8)).unwrap();
    }
    let acked = db.sync_wal().unwrap();
    println!(
        "300 rows inserted, wal synced: durable through lsn {acked:?} ({})",
        {
            let w = db.table().wal_counters();
            format!(
                "{} records in {} batches, mean batch {:.1}",
                w.records,
                w.batches,
                w.mean_batch()
            )
        }
    );

    // Pull the plug: the 40th device operation from now fails and every
    // operation after it reports a dead device.
    store.disk.set_fault_plan(FaultPlan::kill_at(40));
    let mut survived = 0u64;
    let mut failed_at = None;
    for i in 300..800u64 {
        match db.insert_tuple(&reading(i, i % 12, 0.8)) {
            Ok(_) => survived += 1,
            Err(e) => {
                failed_at = Some((i, e));
                break;
            }
        }
    }
    let (at, err) = failed_at.expect("the kill fires within 500 inserts");
    println!("\npower cut mid-workload: insert {at} failed with `{err}`");
    println!(
        "  ({survived} post-sync inserts returned Ok before the cut; the \
         group-commit tail not yet flushed may be lost)"
    );

    // Recovery: reboot the device (RAM gone, platter intact), find the
    // WAL, rebuild from the last sealed checkpoint + the durable suffix.
    let (rdb, info) = UncertainDb::recover(store.clone(), "readings").unwrap();
    println!("\nrecovered:");
    println!("  durable lsn     {:?}", info.durable_lsn);
    println!("  records replayed {}", info.replayed);
    println!("  log truncated    {}", info.log_truncated);
    let live = rdb.table().live_tuples().unwrap().len();
    println!("  live rows        {live} (>= the 300 acknowledged at sync)");
    assert!(live >= 300, "acknowledged rows must survive");

    // The reopened session is writable and durable again.
    let mut rdb = rdb;
    rdb.insert_tuple(&reading(1000, 3, 0.9)).unwrap();
    rdb.sync_wal().unwrap();
    let m = rdb.metrics();
    println!(
        "\nsession metrics: recoveries={} faults_survived={} wal_records={}",
        m.recoveries, m.faults_survived, m.wal_records
    );
    let hits = rdb.ptq(3, 0.2).unwrap();
    println!(
        "query after recovery: WHERE sensor=3 (QT=0.2) -> {} rows",
        hits.len()
    );
}
