//! The runnable programs live in `examples/`; this library is intentionally
//! empty. Run them with `cargo run -p upi-examples --example <name>`.
