//! Integration-test helpers live in the `tests/` directory of this package;
//! the library itself is intentionally empty.
