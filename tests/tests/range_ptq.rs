//! Range PTQs: `WHERE attr BETWEEN lo AND hi (confidence >= QT)` across
//! every access path, against a possible-worlds oracle
//! (`confidence = existence × Σ_{v ∈ range} P(v)`).

use proptest::prelude::*;
use std::sync::Arc;

use upi::{DiscreteUpi, FracturedConfig, FracturedUpi, Pii, UnclusteredHeap, UpiConfig};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, Tuple, TupleId};
use upi_workloads::dblp::{self, author_fields, DblpConfig};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

/// Oracle: summed folded probability over the range, on the quantized grid
/// the indexes use (each alternative quantizes independently).
fn oracle(tuples: &[Tuple], attr: usize, lo: u64, hi: u64, qt: f64) -> Vec<u64> {
    let mut out: Vec<u64> = tuples
        .iter()
        .filter(|t| {
            let conf: f64 = t
                .discrete(attr)
                .alternatives()
                .iter()
                .filter(|&&(v, _)| (lo..=hi).contains(&v))
                .map(|&(_, p)| {
                    upi_storage::codec::dequantize_prob(upi_storage::codec::quantize_prob(
                        p * t.exist,
                    ))
                })
                .sum();
            conf > 0.0 && conf >= qt - 1e-9
        })
        .map(|t| t.id.0)
        .collect();
    out.sort_unstable();
    out
}

fn ids(results: &[upi::PtqResult]) -> Vec<u64> {
    let mut v: Vec<u64> = results.iter().map(|r| r.tuple.id.0).collect();
    v.sort_unstable();
    v
}

#[test]
fn range_ptq_agrees_across_paths_on_dblp() {
    let data = dblp::generate(&DblpConfig::tiny());
    let attr = author_fields::INSTITUTION;
    let st = store();
    let mut heap = UnclusteredHeap::create(st.clone(), "heap", 8192).unwrap();
    heap.bulk_load(&data.authors).unwrap();
    let mut pii = Pii::create(st.clone(), "pii", attr, 8192).unwrap();
    pii.bulk_load(&data.authors).unwrap();
    let mut upi = DiscreteUpi::create(
        st.clone(),
        "upi",
        attr,
        UpiConfig {
            cutoff: 0.3,
            ..UpiConfig::default()
        },
    )
    .unwrap();
    upi.bulk_load(&data.authors).unwrap();

    for (lo, hi) in [(0u64, 5u64), (10, 40), (150, 199), (500, 900)] {
        for qt in [0.01, 0.2, 0.6] {
            let want = oracle(&data.authors, attr, lo, hi, qt);
            assert_eq!(
                ids(&upi.ptq_range(lo, hi, qt).unwrap()),
                want,
                "upi range=[{lo},{hi}] qt={qt}"
            );
            assert_eq!(
                ids(&pii.ptq_range(&heap, lo, hi, qt).unwrap()),
                want,
                "pii range=[{lo},{hi}] qt={qt}"
            );
        }
    }
}

#[test]
fn range_confidences_sum_alternatives() {
    // A tuple with two in-range alternatives must qualify even when each
    // alternative alone is below the threshold.
    let st = store();
    let t = Tuple::new(
        TupleId(1),
        1.0,
        vec![
            Field::Certain(Datum::Str("split".into())),
            Field::Discrete(DiscretePmf::new(vec![(3, 0.3), (4, 0.3), (90, 0.4)])),
        ],
    );
    let mut upi = DiscreteUpi::create(st, "u", 1, UpiConfig::default()).unwrap();
    upi.bulk_load(std::slice::from_ref(&t)).unwrap();
    // Each alternative is 0.3 < 0.5, but the range sum is 0.6.
    let res = upi.ptq_range(3, 4, 0.5).unwrap();
    assert_eq!(res.len(), 1);
    assert!((res[0].confidence - 0.6).abs() < 1e-6);
    // Point queries at the same threshold find nothing.
    assert!(upi.ptq(3, 0.5).unwrap().is_empty());
    assert!(upi.ptq(4, 0.5).unwrap().is_empty());
}

#[test]
fn range_ptq_includes_cutoff_mass() {
    // Below-cutoff alternatives still contribute their probability mass.
    let st = store();
    let t = Tuple::new(
        TupleId(7),
        1.0,
        vec![
            Field::Certain(Datum::Str("tail".into())),
            Field::Discrete(DiscretePmf::new(vec![(100, 0.9), (5, 0.05), (6, 0.04)])),
        ],
    );
    let mut upi = DiscreteUpi::create(
        st,
        "u",
        1,
        UpiConfig {
            cutoff: 0.5, // both tail alternatives go to the cutoff index
            ..UpiConfig::default()
        },
    )
    .unwrap();
    upi.bulk_load(std::slice::from_ref(&t)).unwrap();
    assert_eq!(upi.cutoff_index().len(), 2);
    let res = upi.ptq_range(5, 6, 0.05).unwrap();
    assert_eq!(res.len(), 1, "cutoff mass must be found");
    assert!((res[0].confidence - 0.09).abs() < 1e-6);
}

#[test]
fn fractured_range_spans_components() {
    let data = dblp::generate(&DblpConfig::tiny());
    let attr = author_fields::INSTITUTION;
    let st = store();
    let mut f = FracturedUpi::create(
        st,
        "f",
        attr,
        &[],
        FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops: 0,
        },
    )
    .unwrap();
    let third = data.authors.len() / 3;
    f.load_initial(&data.authors[..third]).unwrap();
    for t in &data.authors[third..2 * third] {
        f.insert(t.clone()).unwrap();
    }
    f.flush().unwrap();
    for t in &data.authors[2 * third..] {
        f.insert(t.clone()).unwrap();
    }
    for (lo, hi, qt) in [(0u64, 20u64, 0.05), (30, 90, 0.3)] {
        let want = oracle(&data.authors, attr, lo, hi, qt);
        assert_eq!(
            ids(&f.ptq_range(lo, hi, qt).unwrap()),
            want,
            "range=[{lo},{hi}] qt={qt}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prop_range_matches_oracle(
        seed in 0u64..500,
        cutoff in 0.0f64..0.9,
        lo in 0u64..8,
        width in 0u64..8,
        qt in 0.0f64..0.9,
    ) {
        // Deterministic small table from the seed.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut unif = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let tuples: Vec<Tuple> = (0..30)
            .map(|i| {
                let exist = 0.3 + unif() * 0.7;
                let k = 1 + (unif() * 3.0) as usize;
                let mut alts: Vec<(u64, f64)> = Vec::new();
                let mut rem = 1.0;
                for _ in 0..k {
                    let v = (unif() * 10.0) as u64;
                    let p = (rem * (0.2 + unif() * 0.5)).max(1e-5);
                    rem -= p;
                    match alts.iter_mut().find(|(av, _)| *av == v) {
                        Some((_, ap)) => *ap += p,
                        None => alts.push((v, p)),
                    }
                }
                Tuple::new(
                    TupleId(i),
                    exist,
                    vec![
                        Field::Certain(Datum::U64(i)),
                        Field::Discrete(DiscretePmf::new(alts)),
                    ],
                )
            })
            .collect();
        let hi = lo + width;
        let st = store();
        let mut upi = DiscreteUpi::create(
            st,
            "u",
            1,
            UpiConfig { cutoff, page_size: 1024, ..UpiConfig::default() },
        ).unwrap();
        upi.bulk_load(&tuples).unwrap();
        let got = ids(&upi.ptq_range(lo, hi, qt).unwrap());
        let want = oracle(&tuples, 1, lo, hi, qt);
        // Quantization at the exact threshold may flip membership; retry
        // the check with a tolerance band before failing.
        if got != want {
            let want_lo = oracle(&tuples, 1, lo, hi, qt + 1e-7);
            let want_hi = oracle(&tuples, 1, lo, hi, qt - 1e-7);
            prop_assert!(
                got == want_lo || got == want_hi,
                "range=[{lo},{hi}] qt={qt}: got {got:?} want {want:?}"
            );
        }
    }
}
