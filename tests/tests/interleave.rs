//! The fractured range merge must *interleave* its per-component runs.
//!
//! Every component's `RangeRun` is constructed up front (each
//! construction seeks to the run start, consuming that component's
//! armed prefetch hint and pulling a read-ahead window into the pool).
//! Draining the components one after another — the old chained
//! behavior — lets the later components' prefetched windows age out of
//! a pressured pool while the first component streams, so their pages
//! are evicted unread and must be demanded again. Round-robin
//! interleaving consumes every window while it is hot: same rows, fewer
//! demand misses, less wasted read-ahead.

use std::sync::Arc;

use upi::cost::estimate_range_run_pages;
use upi::{FracturedConfig, FracturedUpi, UpiConfig};
use upi_storage::{AccessHint, DiskConfig, PoolCounters, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, Tuple, TupleId};

const LO: u64 = 0;
const HI: u64 = 999;
const QT: f64 = 0.3;
const ROWS_PER_COMPONENT: u64 = 9_600;

fn author(id: u64, value: u64, p: f64) -> Tuple {
    let spill = ((1.0 - p) / 2.0).max(0.01);
    Tuple::new(
        TupleId(id),
        0.95,
        vec![
            // Sized so a component's run spans several hundred pages:
            // long runs are what read-ahead windows exist for.
            Field::Certain(Datum::Str(format!("author-{id}-{}", "x".repeat(420)))),
            Field::Discrete(DiscretePmf::new(vec![(value, p), (value + 2000, spill)])),
            Field::Discrete(DiscretePmf::new(vec![(value % 7, 1.0)])),
        ],
    )
}

/// Main + three fractures, each holding an equally long run inside
/// `[LO, HI]`, over a pool small enough that all four prefetch windows
/// cannot survive one full component drain.
fn build() -> (Store, FracturedUpi) {
    let store = Store::new(
        Arc::new(SimDisk::new(DiskConfig::default())),
        // ~320 pages: holds the four in-flight read-ahead windows of an
        // interleaved merge, but not a whole 600-page component drain.
        (5 << 20) / 2,
    );
    let cfg = FracturedConfig {
        upi: UpiConfig::default(),
        buffer_ops: 0,
    };
    let mut f = FracturedUpi::create(store.clone(), "il", 1, &[2], cfg).unwrap();
    let rows: Vec<Tuple> = (0..ROWS_PER_COMPONENT)
        .map(|i| author(i, i % (HI + 1), 0.8))
        .collect();
    f.load_initial(&rows).unwrap();
    for batch in 1..=3u64 {
        for i in 0..ROWS_PER_COMPONENT {
            let id = batch * 100_000 + i;
            f.insert(author(id, i % (HI + 1), 0.8)).unwrap();
        }
        f.flush().unwrap();
    }
    assert_eq!(f.n_fractures(), 3);
    (store, f)
}

/// The per-component run hints the planner arms for `FracturedRange`.
fn range_hints(f: &FracturedUpi) -> Vec<AccessHint> {
    f.components()
        .map(|u| AccessHint {
            start_page: u.run_start_page(LO).unwrap(),
            est_run_pages: estimate_range_run_pages(u, LO, HI),
        })
        .collect()
}

/// Old behavior, reproduced by hand: construct every component's range
/// run (as `FracturedUpi::range_run` does), then drain them one by one.
fn drain_sequentially(store: &Store, f: &FracturedUpi) -> (usize, PoolCounters) {
    store.go_cold();
    let before = store.pool.counters();
    for hint in range_hints(f) {
        store.pool.hint_run(hint);
    }
    let mut runs: Vec<_> = f
        .components()
        .map(|u| u.range_run(LO, HI, QT).unwrap())
        .collect();
    let mut rows = 0usize;
    for run in &mut runs {
        for r in run {
            r.unwrap();
            rows += 1;
        }
    }
    (rows, store.pool.counters().since(&before))
}

/// New behavior: the fractured merge itself, pulling round-robin.
fn drain_interleaved(store: &Store, f: &FracturedUpi) -> (usize, PoolCounters) {
    store.go_cold();
    let before = store.pool.counters();
    for hint in range_hints(f) {
        store.pool.hint_run(hint);
    }
    let rows = f
        .range_run(LO, HI, QT)
        .unwrap()
        .map(|r| r.map(|_| 1usize))
        .sum::<Result<usize, _>>()
        .unwrap();
    (rows, store.pool.counters().since(&before))
}

#[test]
fn interleaved_range_merge_beats_sequential_chaining_under_pool_pressure() {
    let (store, f) = build();
    let (seq_rows, seq) = drain_sequentially(&store, &f);
    let (int_rows, int) = drain_interleaved(&store, &f);
    eprintln!(
        "sequential: {} demand + {} readahead ({} wasted); interleaved: {} demand + {} readahead ({} wasted)",
        seq.demand_pages(), seq.readahead, seq.readahead_wasted,
        int.demand_pages(), int.readahead, int.readahead_wasted,
    );
    assert_eq!(seq_rows, int_rows, "interleaving must not change the rows");
    assert!(seq_rows as u64 >= 4 * ROWS_PER_COMPONENT - 1);
    assert!(
        int.demand_pages() < seq.demand_pages(),
        "interleaved merge must demand fewer pages: {} vs {} sequential \
         (wasted read-ahead {} vs {})",
        int.demand_pages(),
        seq.demand_pages(),
        int.readahead_wasted,
        seq.readahead_wasted,
    );
    assert!(
        int.readahead_wasted <= seq.readahead_wasted,
        "interleaving must not waste more prefetch than chaining: {} vs {}",
        int.readahead_wasted,
        seq.readahead_wasted,
    );
}
