//! Continuous UPI integration: against the Cartel generator, the
//! continuous UPI, the secondary U-Tree and a linear scan must agree, and
//! the segment index over the UPI must agree with the PII baseline.

use std::sync::Arc;

use upi::{
    ContinuousConfig, ContinuousSecondary, ContinuousUpi, Pii, SecondaryUTree, UnclusteredHeap,
};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::Tuple;
use upi_workloads::cartel::{self, observation_fields as f, CartelConfig};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 16 << 20)
}

fn linear_circle(tuples: &[Tuple], qx: f64, qy: f64, r: f64, qt: f64) -> Vec<u64> {
    let mut out: Vec<u64> = tuples
        .iter()
        .filter(|t| t.exist * t.point(f::LOCATION).prob_in_circle(qx, qy, r) >= qt)
        .map(|t| t.id.0)
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn circle_queries_agree_across_paths() {
    let data = cartel::generate(&CartelConfig::tiny());
    let st = store();
    let mut cupi = ContinuousUpi::create(
        st.clone(),
        "cupi",
        f::LOCATION,
        ContinuousConfig {
            node_page: 4096,
            heap_page: 16384,
        },
    )
    .unwrap();
    cupi.bulk_load(&data.observations).unwrap();
    let mut heap = UnclusteredHeap::create(st.clone(), "heap", 8192).unwrap();
    heap.bulk_load(&data.observations).unwrap();
    let mut utree = SecondaryUTree::create(st.clone(), "ut", f::LOCATION, 4096).unwrap();
    utree.bulk_load(&data.observations).unwrap();

    let (cx, cy) = data.query_center();
    for (dx, dy, r, qt) in [
        (0.0, 0.0, 300.0, 0.5),
        (500.0, -250.0, 600.0, 0.2),
        (-900.0, 400.0, 150.0, 0.8),
        (0.0, 0.0, 40.0, 0.05),
    ] {
        let (qx, qy) = (cx + dx, cy + dy);
        let truth = linear_circle(&data.observations, qx, qy, r, qt);
        let mut via_cupi: Vec<u64> = cupi
            .query_circle(qx, qy, r, qt)
            .unwrap()
            .iter()
            .map(|x| x.tuple.id.0)
            .collect();
        via_cupi.sort_unstable();
        let mut via_ut: Vec<u64> = utree
            .query_circle(&heap, qx, qy, r, qt)
            .unwrap()
            .iter()
            .map(|x| x.tuple.id.0)
            .collect();
        via_ut.sort_unstable();
        assert_eq!(via_cupi, truth, "cupi q=({qx},{qy},{r},{qt})");
        assert_eq!(via_ut, truth, "utree q=({qx},{qy},{r},{qt})");
    }
}

#[test]
fn segment_index_agrees_with_pii_baseline() {
    let data = cartel::generate(&CartelConfig::tiny());
    let st = store();
    let mut cupi =
        ContinuousUpi::create(st.clone(), "cupi", f::LOCATION, ContinuousConfig::default())
            .unwrap();
    cupi.bulk_load(&data.observations).unwrap();
    let mut seg_cupi = ContinuousSecondary::create(st.clone(), "sc", f::SEGMENT, 8192).unwrap();
    seg_cupi.bulk_load(&cupi, &data.observations).unwrap();
    let mut heap = UnclusteredHeap::create(st.clone(), "heap", 8192).unwrap();
    heap.bulk_load(&data.observations).unwrap();
    let mut seg_pii = Pii::create(st.clone(), "sp", f::SEGMENT, 8192).unwrap();
    seg_pii.bulk_load(&data.observations).unwrap();

    for seg in [data.busy_segment(), 0, 5] {
        for qt in [0.05, 0.4, 0.8] {
            let mut a: Vec<u64> = seg_cupi
                .ptq(&cupi, seg, qt)
                .unwrap()
                .iter()
                .map(|r| r.tuple.id.0)
                .collect();
            a.sort_unstable();
            let mut b: Vec<u64> = seg_pii
                .ptq(&heap, seg, qt)
                .unwrap()
                .iter()
                .map(|r| r.tuple.id.0)
                .collect();
            b.sort_unstable();
            assert_eq!(a, b, "segment={seg} qt={qt}");
        }
    }
}

#[test]
fn incremental_continuous_inserts_stay_consistent() {
    let data = cartel::generate(&CartelConfig::tiny());
    let st = store();
    let mut cupi = ContinuousUpi::create(
        st.clone(),
        "cupi",
        f::LOCATION,
        ContinuousConfig {
            node_page: 4096,
            heap_page: 8192,
        },
    )
    .unwrap();
    let split = data.observations.len() / 2;
    cupi.bulk_load(&data.observations[..split]).unwrap();
    for t in &data.observations[split..] {
        cupi.insert(t).unwrap();
    }
    assert_eq!(cupi.n_tuples() as usize, data.observations.len());
    let (cx, cy) = data.query_center();
    for (r, qt) in [(400.0, 0.3), (900.0, 0.1)] {
        let truth = linear_circle(&data.observations, cx, cy, r, qt);
        let mut got: Vec<u64> = cupi
            .query_circle(cx, cy, r, qt)
            .unwrap()
            .iter()
            .map(|x| x.tuple.id.0)
            .collect();
        got.sort_unstable();
        assert_eq!(got, truth, "r={r} qt={qt}");
    }
}
