//! Multi-run prefetch hints on the fractured fast path, proven through
//! `PoolCounters`.
//!
//! PR 3's planner hints covered single-run plans only, and the buffer
//! pool tracked a single pending hint and a single detected run — a
//! fracture-parallel merge, which interleaves reads across component
//! files, got neither. These tests pin the generalized behaviour:
//!
//! * at the pool level — k concurrent hinted runs each arm on their own
//!   first miss with no cross-run interference, the two-adjacent-miss
//!   fallback still works for unhinted runs even when interleaved with
//!   hinted ones, and clearing one run's hint leaves its siblings armed;
//! * end-to-end — a fractured plan carries one `AccessHint` per
//!   component, the executor arms all of them before opening the k-way
//!   merge (`PoolCounters::hinted_runs` equals the component count), a
//!   failed open clears exactly the hints it armed, and the hinted
//!   execution takes measurably fewer demand misses than the same plan
//!   with the hints stripped (same rows either way).

use std::sync::Arc;

use upi::{FracturedConfig, TableLayout, UpiConfig};
use upi_query::{AccessPath, PhysicalPlan, PtqQuery, UncertainDb};
use upi_storage::{AccessHint, DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema};

const ATTR: usize = 1;

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

/// A fractured facade table whose components each hold multi-page
/// per-value runs: 12k padded tuples over 5 values, loaded as a main
/// component plus two fractures.
fn build() -> UncertainDb {
    let schema = Schema::new(vec![
        ("pad", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ]);
    let mut db = UncertainDb::create(
        store(),
        "fractured_hinted",
        schema,
        ATTR,
        TableLayout::FracturedUpi(FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops: 0,
        }),
    )
    .unwrap();
    let tuple = |i: u64| {
        let p = 0.55 + (i % 400) as f64 / 1000.0;
        upi_uncertain::Tuple::new(
            upi_uncertain::TupleId(i),
            1.0,
            vec![
                Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(256)))),
                Field::Discrete(DiscretePmf::new(vec![(i % 5, p)])),
            ],
        )
    };
    let initial: Vec<upi_uncertain::Tuple> = (0..8_000u64).map(tuple).collect();
    db.load(&initial).unwrap();
    for batch in [8_000u64..10_000, 10_000..12_000] {
        for i in batch {
            db.insert_tuple(&tuple(i)).unwrap();
        }
        db.flush().unwrap();
    }
    assert_eq!(db.table().as_fractured().unwrap().n_fractures(), 2);
    db
}

#[test]
fn concurrent_hinted_runs_arm_without_interference() {
    // Three files, three hints, reads interleaved the way a k-way merge
    // pulls one row per component: each run must arm on its own first
    // miss and stream from read-ahead from then on.
    let st = store();
    let runs: Vec<Vec<_>> = (0..3)
        .map(|i| {
            let f = st.disk.create_file(&format!("run{i}"), 8192);
            let pages: Vec<_> = (0..24).map(|_| st.disk.alloc_page(f).unwrap()).collect();
            for &p in &pages {
                st.disk
                    .write_page(p, bytes::Bytes::from(vec![i as u8; 8192]))
                    .unwrap();
            }
            pages
        })
        .collect();
    st.go_cold();
    let before = st.pool.counters();
    for run in &runs {
        st.pool.hint_run(AccessHint {
            start_page: run[0],
            est_run_pages: run.len(),
        });
    }
    for i in 0..runs[0].len() {
        for run in &runs {
            st.pool.get(run[i]).unwrap();
        }
    }
    let c = st.pool.counters().since(&before);
    assert_eq!(c.hinted_runs, 3, "every hint must arm: {c}");
    assert_eq!(c.misses, 3, "one cold miss per run, k runs in flight: {c}");
    assert_eq!(c.readahead, 3 * 23, "{c}");
    assert_eq!(c.readahead_hits, 3 * 23, "{c}");
}

#[test]
fn unhinted_runs_keep_the_two_miss_fallback_beside_hinted_ones() {
    let st = store();
    let make = |name: &str| {
        let f = st.disk.create_file(name, 8192);
        let pages: Vec<_> = (0..16).map(|_| st.disk.alloc_page(f).unwrap()).collect();
        for &p in &pages {
            st.disk
                .write_page(p, bytes::Bytes::from(vec![7u8; 8192]))
                .unwrap();
        }
        pages
    };
    let hinted = make("hinted");
    let plain = make("plain");
    st.go_cold();
    let before = st.pool.counters();
    st.pool.hint_run(AccessHint {
        start_page: hinted[0],
        est_run_pages: hinted.len(),
    });
    // Interleave: hinted run arms on its first miss; the unhinted run
    // still needs its own two adjacent misses, unaffected by the hinted
    // traffic in between.
    st.pool.get(hinted[0]).unwrap();
    st.pool.get(plain[0]).unwrap();
    let c = st.pool.counters().since(&before);
    assert_eq!(c.hinted_runs, 1, "{c}");
    assert_eq!(
        c.readahead,
        (hinted.len() - 1) as u64,
        "only the hinted run may have prefetched yet: {c}"
    );
    st.pool.get(plain[1]).unwrap();
    let c = st.pool.counters().since(&before);
    assert!(
        c.readahead > (hinted.len() - 1) as u64,
        "the unhinted run's second adjacent miss must arm detection: {c}"
    );
    assert_eq!(c.hinted_runs, 1, "detection is not a hint: {c}");
}

#[test]
fn fractured_plans_carry_one_hint_per_component_and_arm_them_all() {
    let db = build();
    let st = db.table().store().clone();
    let components = db.table().as_fractured().unwrap().n_fractures() + 1;

    let q = PtqQuery::range(ATTR, 1, 3).with_qt(0.1);
    let plan = db.plan(&q).unwrap();
    assert_eq!(plan.path().label(), "FracturedRange");
    let hints = &plan.candidates[0].hints;
    assert_eq!(
        hints.len(),
        components,
        "a fractured range plan must hint every component: {}",
        plan.explain()
    );
    for h in hints {
        assert!(h.est_run_pages >= 1);
    }
    assert!(
        plan.explain().contains("prefetch hints:"),
        "{}",
        plan.explain()
    );

    let catalog = db.catalog();

    // Hinted (as planned): every component's run arms on its first miss.
    st.go_cold();
    let hinted = plan.execute(&catalog).unwrap();
    let hinted_io = hinted.io.expect("session registers the pool");
    assert_eq!(
        hinted_io.hinted_runs, components as u64,
        "all component hints must be consumed: {hinted_io}"
    );

    // The same physical plan with the hints stripped: identical answer,
    // but every component pays the two-miss detection latency and the
    // fixed window.
    let mut stripped = plan.candidates[0].clone();
    stripped.hints.clear();
    let unhinted_plan = PhysicalPlan {
        query: q.clone(),
        candidates: vec![stripped],
    };
    st.go_cold();
    let unhinted = unhinted_plan.execute(&catalog).unwrap();
    let unhinted_io = unhinted.io.unwrap();
    assert_eq!(unhinted_io.hinted_runs, 0, "{unhinted_io}");

    assert_eq!(hinted.rows.len(), unhinted.rows.len());
    for (a, b) in hinted.rows.iter().zip(&unhinted.rows) {
        assert_eq!(a.tuple.id, b.tuple.id);
    }
    assert!(
        hinted_io.misses * 2 < unhinted_io.misses,
        "per-component hints must cut demand misses well below the \
         detector: hinted {hinted_io} vs unhinted {unhinted_io}"
    );

    // The point merge gets per-component hints too, and its k-way open
    // consumes all of them.
    let point = db.plan(&PtqQuery::eq(ATTR, 3).with_qt(0.1)).unwrap();
    assert_eq!(point.path(), &AccessPath::FracturedProbe);
    assert_eq!(point.candidates[0].hints.len(), components);
    st.go_cold();
    let out = point.execute(&catalog).unwrap();
    let io = out.io.unwrap();
    assert_eq!(io.hinted_runs, components as u64, "{io}");
}

#[test]
fn failed_open_clears_only_its_own_hints() {
    let db = build();
    let st = db.table().store().clone();
    let q = PtqQuery::range(ATTR, 1, 3).with_qt(0.1);
    let plan = db.plan(&q).unwrap();
    let hints = plan.candidates[0].hints.clone();
    assert!(hints.len() >= 2);

    // An unrelated hint armed by "someone else" (a concurrent query)
    // must survive this plan's failed execution.
    let f = st.disk.create_file("bystander", 8192);
    let pages: Vec<_> = (0..8).map(|_| st.disk.alloc_page(f).unwrap()).collect();
    for &p in &pages {
        st.disk
            .write_page(p, bytes::Bytes::from(vec![9u8; 8192]))
            .unwrap();
    }
    st.pool.hint_run(AccessHint {
        start_page: pages[0],
        est_run_pages: pages.len(),
    });

    // Execute against a catalog that registers the pool but not the
    // fractured UPI: open_source fails after the hints were armed.
    let mismatched = upi_query::Catalog::new(st.disk.config()).with_pool(st.pool.as_ref());
    assert!(plan.execute(&mismatched).is_err());

    // None of the plan's own hints survive to mis-fire later...
    let before = st.pool.counters();
    for h in &hints {
        st.pool.get(h.start_page).unwrap();
    }
    let after = st.pool.counters().since(&before);
    assert_eq!(
        after.hinted_runs, 0,
        "hints armed by a failed execution must all be cleared: {after}"
    );

    // ...while the bystander's hint is still pending and arms normally.
    let before = st.pool.counters();
    st.pool.get(pages[0]).unwrap();
    let after = st.pool.counters().since(&before);
    assert_eq!(after.hinted_runs, 1, "unrelated hint must survive: {after}");
}
