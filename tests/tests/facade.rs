//! Planner-first facade: cross-layout query behaviour through
//! `upi_query::UncertainDb`, the only query entry point over an
//! `UncertainTable`. These are the cross-layout guarantees the old
//! facade's unit tests made for the direct-index entry points, now made
//! for the planned ones — same query, different clustering, identical
//! answers — plus proof that each entry point really went through a
//! `PhysicalPlan` (the chosen path differs per layout, and forcing every
//! losing candidate reproduces the same answer).

use std::sync::Arc;

use upi::{FracturedConfig, PtqResult, TableLayout, UpiConfig};
use upi_query::{PhysicalPlan, PtqQuery, UncertainDb};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

fn schema() -> Schema {
    Schema::new(vec![
        ("name", FieldKind::Str),
        ("institution", FieldKind::Discrete),
        ("country", FieldKind::Discrete),
    ])
}

fn row(inst: u64, p: f64, country: u64) -> Vec<Field> {
    vec![
        Field::Certain(Datum::Str("x".into())),
        Field::Discrete(DiscretePmf::new(vec![
            (inst, p),
            (inst + 100, (1.0 - p) * 0.5),
        ])),
        Field::Discrete(DiscretePmf::new(vec![(country, 1.0)])),
    ]
}

fn db(layout: TableLayout) -> UncertainDb {
    let mut db = UncertainDb::create(store(), "t", schema(), 1, layout).unwrap();
    // Every layout supports secondaries now — fractured tables build
    // them across components instead of panicking.
    db.add_secondary(2).unwrap();
    db
}

fn layouts() -> Vec<UncertainDb> {
    vec![
        db(TableLayout::Unclustered),
        db(TableLayout::Upi(UpiConfig::default())),
        db(TableLayout::FracturedUpi(FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops: 0,
        })),
    ]
}

fn ids(rows: &[PtqResult]) -> Vec<u64> {
    let mut v: Vec<u64> = rows.iter().map(|r| r.tuple.id.0).collect();
    v.sort_unstable();
    v
}

#[test]
fn all_layouts_answer_identically() {
    let mut dbs = layouts();
    for d in &mut dbs {
        for i in 0..200u64 {
            d.insert(0.9, row(i % 7, 0.6, i % 3)).unwrap();
        }
    }
    let reference = ids(&dbs[0].ptq(3, 0.2).unwrap());
    assert!(!reference.is_empty());
    for d in &dbs[1..] {
        assert_eq!(ids(&d.ptq(3, 0.2).unwrap()), reference);
    }
    // Range queries agree too.
    let range_ref = dbs[0].ptq_range(2, 5, 0.3).unwrap().len();
    for d in &dbs[1..] {
        assert_eq!(d.ptq_range(2, 5, 0.3).unwrap().len(), range_ref);
    }
    // And each layout's planner picked a physical story from its own
    // structures — the point of planning over the facade. (On a table
    // this small the cost models may legitimately prefer a single-open
    // full scan to an index descent, so scans are acceptable choices.)
    let q = PtqQuery::eq(1, 3).with_qt(0.2);
    let chosen: Vec<String> = dbs
        .iter()
        .map(|d| d.plan(&q).unwrap().path().label())
        .collect();
    assert!(
        chosen[0].starts_with("PiiProbe") || chosen[0] == "HeapScan",
        "unclustered: {chosen:?}"
    );
    assert!(
        chosen[1].starts_with("UpiHeap") || chosen[1] == "UpiFullScan",
        "upi: {chosen:?}"
    );
    assert!(chosen[2].starts_with("Fractured"), "fractured: {chosen:?}");
}

#[test]
fn secondary_and_topk_paths() {
    let mut unc = db(TableLayout::Unclustered);
    let mut upi = db(TableLayout::Upi(UpiConfig::default()));
    for i in 0..150u64 {
        let r = row(i % 5, 0.5 + (i % 4) as f64 * 0.1, i % 3);
        unc.insert(0.9, r.clone()).unwrap();
        upi.insert(0.9, r).unwrap();
    }
    assert_eq!(
        ids(&unc.ptq_secondary(0, 1, 0.3).unwrap()),
        ids(&upi.ptq_secondary(0, 1, 0.3).unwrap())
    );

    let top = upi.top_k(2, 3).unwrap();
    assert_eq!(top.len(), 3);
    assert!(top.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    // The top-k prefix agrees with the full planned answer.
    let full = upi.ptq(2, 0.0).unwrap();
    for (a, b) in top.iter().zip(&full) {
        assert_eq!(a.tuple.id, b.tuple.id);
        assert!((a.confidence - b.confidence).abs() < 1e-12);
    }
}

#[test]
fn fractured_lifecycle_through_facade() {
    let mut d = db(TableLayout::FracturedUpi(FracturedConfig {
        upi: UpiConfig::default(),
        buffer_ops: 0,
    }));
    for i in 0..100u64 {
        d.insert(0.9, row(i % 5, 0.7, 0)).unwrap();
    }
    let before = d.ptq(2, 0.3).unwrap().len();
    d.flush().unwrap();
    assert_eq!(d.ptq(2, 0.3).unwrap().len(), before);
    d.merge().unwrap();
    assert_eq!(d.ptq(2, 0.3).unwrap().len(), before);
    assert!(d.table().as_upi().is_some());
}

#[test]
fn fractured_secondary_added_after_fractures_is_planned_through() {
    // The old creation-order restriction made this panic: a secondary
    // declared only *after* the table already has a main component, an
    // on-disk fracture, and live buffered rows. It must now be built
    // across every existing component and answer exactly like the same
    // rows in a UPI table whose secondary existed from the start.
    let mut frac = UncertainDb::create(
        store(),
        "late",
        schema(),
        1,
        TableLayout::FracturedUpi(FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops: 0,
        }),
    )
    .unwrap();
    let mut reference = db(TableLayout::Upi(UpiConfig::default()));
    for i in 0..80u64 {
        let r = row(i % 5, 0.5 + (i % 4) as f64 * 0.1, i % 3);
        frac.insert(0.9, r.clone()).unwrap();
        reference.insert(0.9, r).unwrap();
    }
    frac.flush().unwrap(); // first fracture event
    for i in 80..120u64 {
        let r = row(i % 5, 0.5 + (i % 4) as f64 * 0.1, i % 3);
        frac.insert(0.9, r.clone()).unwrap();
        reference.insert(0.9, r).unwrap();
    }
    frac.flush().unwrap(); // second fracture event
    assert_eq!(frac.table().as_fractured().unwrap().n_fractures(), 2);

    // Declare the secondary only now, then add buffered-only rows on top.
    let idx = frac.add_secondary(2).unwrap();
    assert_eq!(idx, 0);
    for i in 120..140u64 {
        let r = row(i % 5, 0.5 + (i % 4) as f64 * 0.1, i % 3);
        frac.insert(0.9, r.clone()).unwrap();
        reference.insert(0.9, r).unwrap();
    }

    for country in 0..3u64 {
        for qt in [0.1, 0.5, 0.9] {
            assert_eq!(
                ids(&frac.ptq_secondary(0, country, qt).unwrap()),
                ids(&reference.ptq_secondary(0, country, qt).unwrap()),
                "country={country} qt={qt}"
            );
        }
    }

    // The planner really routes it through the cross-component secondary:
    // the fractured path is enumerated and agrees with the chosen plan.
    let q = PtqQuery::eq(2, 1).with_qt(0.2);
    let catalog = frac.catalog();
    let plan = q.plan(&catalog).unwrap();
    let labels: Vec<String> = plan.candidates.iter().map(|c| c.path.label()).collect();
    assert!(
        labels.iter().any(|l| l.starts_with("FracturedSecondary#0")),
        "{labels:?}"
    );
    let reference_rows = ids(&plan.execute(&catalog).unwrap().rows);
    for cand in &plan.candidates {
        let forced = PhysicalPlan {
            query: q.clone(),
            candidates: vec![cand.clone()],
        };
        assert_eq!(
            ids(&forced.execute(&catalog).unwrap().rows),
            reference_rows,
            "forced {} diverges",
            cand.path.label()
        );
    }
}

#[test]
fn secondary_added_after_load_matches_declared_up_front_on_every_layout() {
    // Each layout must backfill a late secondary from its live rows:
    // the unclustered PII from a heap scan, the UPI from its clustered
    // heap, the fractured table across components. Reference: the same
    // rows with the secondary declared before any data.
    for layout in [
        TableLayout::Unclustered,
        TableLayout::Upi(UpiConfig::default()),
        TableLayout::FracturedUpi(FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops: 0,
        }),
    ] {
        let mut late =
            UncertainDb::create(store(), "late_sec", schema(), 1, layout.clone()).unwrap();
        let mut reference = db(layout);
        for i in 0..100u64 {
            let r = row(i % 5, 0.5 + (i % 4) as f64 * 0.1, i % 3);
            late.insert(0.9, r.clone()).unwrap();
            reference.insert(0.9, r).unwrap();
        }
        late.flush().unwrap();
        late.add_secondary(2).unwrap();
        for country in 0..3u64 {
            for qt in [0.1, 0.5, 0.9] {
                assert_eq!(
                    ids(&late.ptq_secondary(0, country, qt).unwrap()),
                    ids(&reference.ptq_secondary(0, country, qt).unwrap()),
                    "country={country} qt={qt}"
                );
                assert!(
                    qt > 0.5 || !late.ptq_secondary(0, country, qt).unwrap().is_empty(),
                    "backfilled secondary must see the loaded rows"
                );
            }
        }
    }
}

#[test]
fn every_entry_point_survives_forcing_each_candidate() {
    // The acceptance-criterion shape: each facade entry point's planned
    // answer must be reproduced by every candidate the planner ranked,
    // for every layout — i.e. the facade result is a planner result, not
    // a structure-specific artifact.
    let mut dbs = layouts();
    for d in &mut dbs {
        for i in 0..150u64 {
            d.insert(0.85, row(i % 6, 0.45 + (i % 5) as f64 * 0.1, i % 4))
                .unwrap();
        }
    }
    for d in &dbs {
        let primary = d.table().primary_attr();
        let mut queries = vec![
            PtqQuery::eq(primary, 2).with_qt(0.2),
            PtqQuery::range(primary, 1, 4).with_qt(0.3),
            PtqQuery::eq(primary, 2).with_top_k(3),
        ];
        if !d.table().sec_attrs().is_empty() {
            queries.push(PtqQuery::eq(d.table().sec_attrs()[0], 1).with_qt(0.3));
        }
        let catalog = d.catalog();
        for q in queries {
            let plan = q.plan(&catalog).unwrap();
            let reference = ids(&plan.execute(&catalog).unwrap().rows);
            for cand in &plan.candidates {
                let forced = PhysicalPlan {
                    query: q.clone(),
                    candidates: vec![cand.clone()],
                };
                assert_eq!(
                    ids(&forced.execute(&catalog).unwrap().rows),
                    reference,
                    "query {q:?}: forced {} diverges from planned {}",
                    cand.path.label(),
                    plan.path().label()
                );
            }
        }
    }
}
