//! Fractured-UPI lifecycle: long randomized insert/delete/flush/merge
//! sequences must always answer queries exactly like a non-fractured model.

use std::collections::HashMap;
use std::sync::Arc;

use upi::{FracturedConfig, FracturedUpi, UpiConfig};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, Tuple, TupleId};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 16 << 20)
}

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn unif(&mut self) -> f64 {
        self.next() as f64 / (1u64 << 53) as f64
    }
}

fn make_tuple(rng: &mut Lcg, id: u64) -> Tuple {
    let exist = 0.6 + rng.unif() * 0.4;
    let v1 = rng.next() % 20;
    let p1 = 0.3 + rng.unif() * 0.5;
    let mut alts = vec![(v1, p1)];
    if rng.unif() < 0.7 {
        let v2 = (v1 + 1 + rng.next() % 19) % 20;
        alts.push((v2, (1.0 - p1) * (0.2 + rng.unif() * 0.7)));
    }
    Tuple::new(
        TupleId(id),
        exist,
        vec![
            Field::Certain(Datum::Str(format!("r{id}"))),
            Field::Discrete(DiscretePmf::new(alts)),
        ],
    )
}

#[test]
fn randomized_lifecycle_matches_model() {
    let mut rng = Lcg(0xFEED);
    let st = store();
    let mut f = FracturedUpi::create(
        st,
        "life",
        1,
        &[],
        FracturedConfig {
            upi: UpiConfig {
                cutoff: 0.15,
                ..UpiConfig::default()
            },
            buffer_ops: 0,
        },
    )
    .unwrap();
    let mut model: HashMap<u64, Tuple> = HashMap::new();
    let mut next_id = 0u64;

    // Initial load.
    let initial: Vec<Tuple> = (0..300)
        .map(|_| {
            let t = make_tuple(&mut rng, next_id);
            next_id += 1;
            t
        })
        .collect();
    for t in &initial {
        model.insert(t.id.0, t.clone());
    }
    f.load_initial(&initial).unwrap();

    for step in 0..600 {
        match rng.next() % 10 {
            0..=4 => {
                let t = make_tuple(&mut rng, next_id);
                next_id += 1;
                model.insert(t.id.0, t.clone());
                f.insert(t).unwrap();
            }
            5..=6 => {
                if !model.is_empty() {
                    let keys: Vec<u64> = model.keys().copied().collect();
                    let victim = keys[(rng.next() as usize) % keys.len()];
                    model.remove(&victim);
                    f.delete(TupleId(victim)).unwrap();
                }
            }
            7..=8 => f.flush().unwrap(),
            _ => f.merge().unwrap(),
        }

        if step % 37 == 0 {
            let value = rng.next() % 20;
            let qt = rng.unif() * 0.6;
            let mut got: Vec<u64> = f
                .ptq(value, qt)
                .unwrap()
                .iter()
                .map(|r| r.tuple.id.0)
                .collect();
            got.sort_unstable();
            let mut want: Vec<u64> = model
                .values()
                .filter(|t| {
                    let conf = t.confidence_eq(1, value);
                    let q = upi_storage::codec::quantize_prob(conf);
                    conf > 0.0 && upi_storage::codec::dequantize_prob(q) >= qt
                })
                .map(|t| t.id.0)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "step={step} value={value} qt={qt}");
            assert_eq!(f.n_live_tuples() as usize, model.len(), "step={step}");
        }
    }
}

#[test]
fn per_fracture_tuning_parameters_coexist() {
    // §4.2: "each fracture can have different tuning parameters".
    let mut rng = Lcg(0xACE);
    let st = store();
    let mut f = FracturedUpi::create(
        st,
        "tuned",
        1,
        &[],
        FracturedConfig {
            upi: UpiConfig {
                cutoff: 0.1,
                ..UpiConfig::default()
            },
            buffer_ops: 0,
        },
    )
    .unwrap();
    let mut all: Vec<Tuple> = Vec::new();
    let mut next_id = 0u64;
    for (i, cutoff) in [0.0, 0.3, 0.9].into_iter().enumerate() {
        for _ in 0..100 {
            let t = make_tuple(&mut rng, next_id);
            next_id += 1;
            all.push(t.clone());
            f.insert(t).unwrap();
        }
        f.flush_with(UpiConfig {
            cutoff,
            ..UpiConfig::default()
        })
        .unwrap();
        assert_eq!(f.n_fractures(), i + 1);
    }
    // Queries remain exact regardless of per-fracture cutoffs.
    for value in 0..20u64 {
        for qt in [0.01, 0.2, 0.5] {
            let mut got: Vec<u64> = f
                .ptq(value, qt)
                .unwrap()
                .iter()
                .map(|r| r.tuple.id.0)
                .collect();
            got.sort_unstable();
            let mut want: Vec<u64> = all
                .iter()
                .filter(|t| {
                    let conf = t.confidence_eq(1, value);
                    let q = upi_storage::codec::quantize_prob(conf);
                    conf > 0.0 && upi_storage::codec::dequantize_prob(q) >= qt
                })
                .map(|t| t.id.0)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "value={value} qt={qt}");
        }
    }
}
