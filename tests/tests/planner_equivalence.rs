//! Planner equivalence oracle: on randomized uncertain tables, the
//! planner-chosen plan must return a result set identical to EVERY
//! alternative access path — point, secondary, range, top-k, and
//! group-count query shapes, across an unclustered-heap + PII baseline, a
//! discrete UPI with a secondary index, and a fractured UPI holding the
//! same rows.
//!
//! The second oracle is **suppression-heavy**: randomized fractured
//! tables built from interleaved inserts, deletes, and updates across
//! 1–4 fracture events (with an optionally live insert buffer), where
//! the facade, every forced fractured path (including the
//! watermark-bounded top-k merge), and a forced full scan of the live
//! row set must agree on ptq / range / secondary / top-k result sets.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

use upi::{
    DiscreteUpi, FracturedConfig, FracturedUpi, Pii, TableLayout, UnclusteredHeap, UpiConfig,
};
use upi_query::{Catalog, PhysicalPlan, PtqQuery, QueryOutput, UncertainDb};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

/// A random PMF over a small value domain, deduped and normalized.
fn pmf_strategy(domain: u64) -> impl Strategy<Value = DiscretePmf> {
    proptest::collection::vec((0u64..domain, 0.01f64..1.0), 1..4).prop_map(|raw| {
        let mut alts: Vec<(u64, f64)> = Vec::new();
        for (v, w) in raw {
            match alts.iter_mut().find(|(av, _)| *av == v) {
                Some((_, aw)) => *aw += w,
                None => alts.push((v, w)),
            }
        }
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        let scale = 0.999 / total.max(1.0);
        DiscretePmf::new(
            alts.into_iter()
                .map(|(v, w)| (v, (w * scale).max(1e-6)))
                .collect(),
        )
    })
}

fn tuple_strategy(id: u64) -> impl Strategy<Value = Tuple> {
    (0.05f64..=1.0, pmf_strategy(8), pmf_strategy(6)).prop_map(move |(exist, prim, sec)| {
        Tuple::new(
            TupleId(id),
            exist,
            vec![
                Field::Certain(Datum::U64(id % 4)),
                Field::Discrete(prim),
                Field::Discrete(sec),
            ],
        )
    })
}

fn table_strategy() -> impl Strategy<Value = Vec<Tuple>> {
    (1usize..30).prop_flat_map(|n| (0..n as u64).map(tuple_strategy).collect::<Vec<_>>())
}

/// A tuple with a random id from a small domain, so later rounds update
/// (same id, newer component shadows) or revive (delete then re-insert)
/// earlier rows as often as they add fresh ones.
fn any_tuple_strategy() -> impl Strategy<Value = Tuple> {
    (0u64..40).prop_flat_map(tuple_strategy)
}

/// One maintenance round: tuples to insert/update, then ids to delete.
/// Each round ends in a fracture event (flush), except possibly the last.
fn rounds_strategy() -> impl Strategy<Value = Vec<(Vec<Tuple>, Vec<u64>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any_tuple_strategy(), 0..8),
            proptest::collection::vec(0u64..40, 0..6),
        ),
        1..=4,
    )
}

/// Comparable fingerprint: the group table, or sorted `(tid, confidence)`.
fn fingerprint(out: &QueryOutput) -> Vec<(u64, u64)> {
    match &out.groups {
        Some(g) => g.clone(),
        None => {
            let mut rows: Vec<(u64, u64)> = out
                .rows
                .iter()
                .map(|r| (r.tuple.id.0, (r.confidence * 1e9).round() as u64))
                .collect();
            rows.sort_unstable();
            rows
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planner_equals_every_forced_path(
        tuples in table_strategy(),
        cutoff in 0.0f64..=0.8,
        value in 0u64..8,
        sec_value in 0u64..6,
        qt in 0.0f64..=0.9,
        lo in 0u64..8,
        width in 0u64..4,
    ) {
        let st = store();
        let cfg = UpiConfig { cutoff, ..UpiConfig::default() };

        let mut heap = UnclusteredHeap::create(st.clone(), "heap", 4096).unwrap();
        heap.bulk_load(&tuples).unwrap();
        let mut pii_prim = Pii::create(st.clone(), "pii1", 1, 4096).unwrap();
        pii_prim.bulk_load(&tuples).unwrap();
        let mut pii_sec = Pii::create(st.clone(), "pii2", 2, 4096).unwrap();
        pii_sec.bulk_load(&tuples).unwrap();

        let mut upi = DiscreteUpi::create(st.clone(), "upi", 1, cfg).unwrap();
        upi.add_secondary(2).unwrap();
        upi.bulk_load(&tuples).unwrap();

        // Same rows as main-load + buffered inserts + one flush, so the
        // fractured paths run over multiple components.
        let mut fractured = FracturedUpi::create(
            st.clone(),
            "frac",
            1,
            &[2],
            FracturedConfig { upi: cfg, buffer_ops: 0 },
        )
        .unwrap();
        let half = tuples.len() / 2;
        fractured.load_initial(&tuples[..half]).unwrap();
        for t in &tuples[half..] {
            fractured.insert(t.clone()).unwrap();
        }
        if !tuples[half..].is_empty() {
            fractured.flush().unwrap();
        }

        let catalog = Catalog::new(st.disk.config())
            .with_upi(&upi)
            .with_fractured(&fractured)
            .with_heap(&heap)
            .with_pii(&pii_prim)
            .with_pii(&pii_sec);

        // Facade oracle: the same rows behind the planner-first facade.
        // Every query below must come back identical to the reference the
        // manual catalog produces — i.e. the facade's plan() → execute()
        // pipeline is just another (always-planned) path to the same
        // answer.
        let mut facade = UncertainDb::create(
            st.clone(),
            "facade",
            Schema::new(vec![
                ("g", FieldKind::U64),
                ("prim", FieldKind::Discrete),
                ("sec", FieldKind::Discrete),
            ]),
            1,
            TableLayout::Upi(cfg),
        )
        .unwrap();
        facade.add_secondary(2).unwrap();
        facade.load(&tuples).unwrap();

        let queries = vec![
            PtqQuery::eq(1, value).with_qt(qt),
            PtqQuery::eq(2, sec_value).with_qt(qt),
            // Top-k on the clustered attribute: exercises the
            // confidence-ordered UpiPointMerge / FracturedMerge early
            // termination against every batch-ish alternative.
            PtqQuery::eq(1, value).with_qt(qt).with_top_k(3),
            PtqQuery::eq(1, value).with_top_k(1),
            // Top-k through the secondary probes: exercises the entry-run
            // limit pushdown (standalone) and the per-component
            // post-suppression limit (fractured).
            PtqQuery::eq(2, sec_value).with_qt(qt).with_top_k(2),
            PtqQuery::range(1, lo, (lo + width).min(7)).with_qt(qt),
            // Top-k over a range: no sound early exit (alternatives sum),
            // but the streaming UpiRange/FracturedMerge sources must agree
            // with every other path after the sink sorts.
            PtqQuery::range(1, lo, (lo + width).min(7))
                .with_qt(qt)
                .with_top_k(4),
            PtqQuery::range(1, lo, (lo + width).min(7))
                .with_qt(qt)
                .with_group_count(0),
        ];
        for q in queries {
            let plan = q.plan(&catalog).unwrap();
            let reference = fingerprint(&plan.execute(&catalog).unwrap());
            let via_facade = fingerprint(&facade.query(&q).unwrap());
            prop_assert_eq!(
                &via_facade,
                &reference,
                "query {:?}: facade (chose {}) disagrees with the manual \
                 catalog's planner choice {}",
                q,
                facade.plan(&q).unwrap().path().label(),
                plan.path().label()
            );
            for cand in &plan.candidates {
                let forced = PhysicalPlan {
                    query: q.clone(),
                    candidates: vec![cand.clone()],
                };
                let got = fingerprint(&forced.execute(&catalog).unwrap());
                prop_assert_eq!(
                    &got,
                    &reference,
                    "query {:?}: path {} disagrees with planner choice {}",
                    q,
                    cand.path.label(),
                    plan.path().label()
                );
            }
        }
    }

    #[test]
    fn suppression_heavy_fractured_oracle(
        initial in table_strategy(),
        rounds in rounds_strategy(),
        flush_last_bit in 0u8..2,
        cutoff in 0.0f64..=0.8,
        value in 0u64..8,
        sec_value in 0u64..6,
        qt in 0.0f64..=0.9,
        k in 1usize..6,
        lo in 0u64..8,
        width in 0u64..4,
    ) {
        let st = store();
        let cfg = UpiConfig { cutoff, ..UpiConfig::default() };

        // The structure under test: a fractured UPI taking the full
        // insert/delete/update history, one fracture event per round.
        let mut fractured = FracturedUpi::create(
            st.clone(),
            "frac",
            1,
            &[2],
            FracturedConfig { upi: cfg, buffer_ops: 0 },
        )
        .unwrap();

        // The same history through the planner-first facade. Its
        // secondary is added *after* load + first flush below, so the
        // cross-component backfill path is exercised against the
        // declared-at-creation secondary of `fractured`.
        let mut facade = UncertainDb::create(
            st.clone(),
            "facade",
            Schema::new(vec![
                ("g", FieldKind::U64),
                ("prim", FieldKind::Discrete),
                ("sec", FieldKind::Discrete),
            ]),
            1,
            TableLayout::FracturedUpi(FracturedConfig { upi: cfg, buffer_ops: 0 }),
        )
        .unwrap();

        // Model of the live row set (the scan ground truth).
        let mut model: BTreeMap<u64, Tuple> = BTreeMap::new();

        fractured.load_initial(&initial).unwrap();
        facade.load(&initial).unwrap();
        for t in &initial {
            model.insert(t.id.0, t.clone());
        }
        fractured.flush().unwrap();
        facade.flush().unwrap();
        facade.add_secondary(2).unwrap();

        let n_rounds = rounds.len();
        for (i, (inserts, deletes)) in rounds.into_iter().enumerate() {
            for t in inserts {
                fractured.insert(t.clone()).unwrap();
                facade.insert_tuple(&t).unwrap();
                model.insert(t.id.0, t);
            }
            for id in deletes {
                // Deleting an absent id buffers a (harmless) delete-set
                // entry in both structures; the model just ignores it.
                if let Some(old) = model.remove(&id) {
                    fractured.delete(TupleId(id)).unwrap();
                    facade.delete(&old).unwrap();
                } else {
                    fractured.delete(TupleId(id)).unwrap();
                    facade.delete(&Tuple::new(
                        TupleId(id),
                        1.0,
                        vec![
                            Field::Certain(Datum::U64(0)),
                            Field::Discrete(DiscretePmf::certain(0)),
                            Field::Discrete(DiscretePmf::certain(0)),
                        ],
                    )).unwrap();
                }
            }
            if i + 1 < n_rounds || flush_last_bit == 1 {
                fractured.flush().unwrap();
                facade.flush().unwrap();
            }
        }

        // Ground truth: a full scan over exactly the live rows.
        let live: Vec<Tuple> = model.values().cloned().collect();
        let mut heap = UnclusteredHeap::create(st.clone(), "live", 4096).unwrap();
        heap.bulk_load(&live).unwrap();

        let catalog = Catalog::new(st.disk.config())
            .with_fractured(&fractured)
            .with_heap(&heap);

        let hi = (lo + width).min(7);
        let queries = vec![
            PtqQuery::eq(1, value).with_qt(qt),
            // Watermark-bounded fracture-parallel top-k vs the scan.
            PtqQuery::eq(1, value).with_qt(qt).with_top_k(k),
            PtqQuery::eq(1, value).with_top_k(1),
            PtqQuery::eq(2, sec_value).with_qt(qt),
            PtqQuery::eq(2, sec_value).with_qt(qt).with_top_k(k),
            PtqQuery::range(1, lo, hi).with_qt(qt),
            PtqQuery::range(1, lo, hi).with_qt(qt).with_top_k(k),
        ];
        for q in queries {
            let plan = q.plan(&catalog).unwrap();
            let reference = fingerprint(&plan.execute(&catalog).unwrap());
            let via_facade = fingerprint(&facade.query(&q).unwrap());
            prop_assert_eq!(
                &via_facade,
                &reference,
                "query {:?}: facade (chose {}) disagrees with the manual \
                 catalog's planner choice {}",
                q,
                facade.plan(&q).unwrap().path().label(),
                plan.path().label()
            );
            for cand in &plan.candidates {
                let forced = PhysicalPlan {
                    query: q.clone(),
                    candidates: vec![cand.clone()],
                };
                let got = fingerprint(&forced.execute(&catalog).unwrap());
                prop_assert_eq!(
                    &got,
                    &reference,
                    "query {:?}: path {} disagrees with planner choice {} \
                     ({} fractures, {} buffered ops)",
                    q,
                    cand.path.label(),
                    plan.path().label(),
                    fractured.n_fractures(),
                    fractured.buffered_ops()
                );
            }
        }
    }
}
