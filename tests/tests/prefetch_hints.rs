//! Planner-aware prefetch hints, proven through `PoolCounters`.
//!
//! The unhinted buffer pool only trusts a read pattern after **two**
//! adjacent cold misses; a planner that chose a run-shaped access path
//! knows better *before* execution. These tests pin both behaviours:
//!
//! * at the pool level — a hinted start page arms read-ahead after a
//!   **single** cold miss with a window sized from the estimated run
//!   length, while an unhinted run still pays the two-miss detection
//!   latency;
//! * end-to-end — a planned clustered range run carries an
//!   `AccessHint`, the executor arms it, and the hinted execution takes
//!   measurably fewer demand misses than the same plan with the hint
//!   stripped (same rows either way).

use std::sync::Arc;

use upi::{TableLayout, UpiConfig};
use upi_query::{PhysicalPlan, PtqQuery, UncertainDb};
use upi_storage::{AccessHint, DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema};

const ATTR: usize = 1;

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

/// A UPI-clustered facade table whose per-value runs span hundreds of
/// 8 KiB pages (12k tuples, ~290-byte payloads, 5 values).
fn build() -> UncertainDb {
    let schema = Schema::new(vec![
        ("pad", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ]);
    let mut db = UncertainDb::create(
        store(),
        "hinted",
        schema,
        ATTR,
        TableLayout::Upi(UpiConfig::default()),
    )
    .unwrap();
    let tuples: Vec<upi_uncertain::Tuple> = (0..12_000u64)
        .map(|i| {
            let p = 0.55 + (i % 400) as f64 / 1000.0;
            upi_uncertain::Tuple::new(
                upi_uncertain::TupleId(i),
                1.0,
                vec![
                    Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(256)))),
                    Field::Discrete(DiscretePmf::new(vec![(i % 5, p)])),
                ],
            )
        })
        .collect();
    db.load(&tuples).unwrap();
    db
}

#[test]
fn unhinted_readahead_needs_two_adjacent_misses() {
    let st = store();
    let f = st.disk.create_file("plain", 8192);
    let pages: Vec<_> = (0..16).map(|_| st.disk.alloc_page(f).unwrap()).collect();
    for &p in &pages {
        st.disk
            .write_page(p, bytes::Bytes::from(vec![1u8; 8192]))
            .unwrap();
    }
    st.go_cold();
    let before = st.pool.counters();
    st.pool.get(pages[0]).unwrap();
    let after_one = st.pool.counters().since(&before);
    assert_eq!(after_one.misses, 1);
    assert_eq!(
        after_one.readahead, 0,
        "one miss is not a run: no prefetch yet"
    );
    st.pool.get(pages[1]).unwrap();
    let after_two = st.pool.counters().since(&before);
    assert_eq!(after_two.misses, 2);
    assert!(
        after_two.readahead > 0,
        "the second adjacent miss must arm read-ahead: {after_two}"
    );
}

#[test]
fn hinted_run_arms_on_first_miss_with_run_sized_window() {
    let st = store();
    let f = st.disk.create_file("hinted", 8192);
    let pages: Vec<_> = (0..40).map(|_| st.disk.alloc_page(f).unwrap()).collect();
    for &p in &pages {
        st.disk
            .write_page(p, bytes::Bytes::from(vec![2u8; 8192]))
            .unwrap();
    }
    st.go_cold();
    let before = st.pool.counters();
    st.pool.hint_run(AccessHint {
        start_page: pages[0],
        est_run_pages: 30,
    });
    st.pool.get(pages[0]).unwrap();
    let c = st.pool.counters().since(&before);
    assert_eq!(c.misses, 1, "exactly one cold miss so far");
    assert_eq!(c.hinted_runs, 1, "the hint must be consumed: {c}");
    assert_eq!(
        c.readahead,
        29,
        "window must cover the estimated run, not the fixed {}-page \
         detector window: {c}",
        st.disk.config().readahead_pages
    );
}

#[test]
fn planned_range_run_carries_and_arms_a_hint() {
    let db = build();
    let st = db.table().store().clone();

    let q = PtqQuery::range(ATTR, 1, 3).with_qt(0.1);
    let plan = db.plan(&q).unwrap();
    assert_eq!(plan.path().label(), "UpiRange");
    let hint = *plan.candidates[0]
        .hints
        .first()
        .expect("a clustered range run must carry a prefetch hint");
    assert!(
        hint.est_run_pages > 50,
        "three of five values over ~430 heap pages: {}",
        hint.est_run_pages
    );
    assert!(
        plan.explain().contains("prefetch hint:"),
        "{}",
        plan.explain()
    );

    let catalog = db.catalog();

    // Hinted (as planned): read-ahead arms on the run's first miss.
    st.go_cold();
    let hinted = plan.execute(&catalog).unwrap();
    let hinted_io = hinted.io.expect("session registers the pool");
    assert_eq!(hinted_io.hinted_runs, 1, "{hinted_io}");
    assert!(hinted_io.readahead > 0, "{hinted_io}");

    // The same physical plan with the hint stripped: identical answer,
    // but the pool falls back to two-miss detection with its fixed
    // window, paying a demand miss every `readahead_pages`.
    let mut stripped = plan.candidates[0].clone();
    stripped.hints.clear();
    let unhinted_plan = PhysicalPlan {
        query: q.clone(),
        candidates: vec![stripped],
    };
    st.go_cold();
    let unhinted = unhinted_plan.execute(&catalog).unwrap();
    let unhinted_io = unhinted.io.unwrap();
    assert_eq!(unhinted_io.hinted_runs, 0, "{unhinted_io}");

    assert_eq!(hinted.rows.len(), unhinted.rows.len());
    for (a, b) in hinted.rows.iter().zip(&unhinted.rows) {
        assert_eq!(a.tuple.id, b.tuple.id);
    }
    assert!(
        hinted_io.misses * 2 < unhinted_io.misses,
        "run-length-sized batches must cut demand misses well below the \
         fixed-window detector: hinted {hinted_io} vs unhinted {unhinted_io}"
    );
    // Both read essentially the run; the hint moves pages from demand
    // misses into large prefetch batches rather than reading more.
    assert!(
        hinted_io.pages_read() <= unhinted_io.pages_read() + hint.est_run_pages as u64,
        "hinted {hinted_io} vs unhinted {unhinted_io}"
    );
}

#[test]
fn failed_execution_clears_its_armed_hint() {
    let db = build();
    let st = db.table().store().clone();
    let q = PtqQuery::range(ATTR, 1, 3).with_qt(0.1);
    let plan = db.plan(&q).unwrap();
    let hint = *plan.candidates[0]
        .hints
        .first()
        .expect("range run carries a hint");

    // Execute the plan against a catalog that registers the pool but not
    // the UPI: open_source fails after the hint was armed. The stale
    // hint must not survive to mis-fire on a later unrelated access.
    let mismatched = upi_query::Catalog::new(st.disk.config()).with_pool(st.pool.as_ref());
    assert!(plan.execute(&mismatched).is_err());

    let before = st.pool.counters();
    st.pool.get(hint.start_page).unwrap();
    let after = st.pool.counters().since(&before);
    assert_eq!(
        after.hinted_runs, 0,
        "a hint armed by a failed execution must have been cleared: {after}"
    );
    assert_eq!(after.readahead, 0, "{after}");
}

#[test]
fn point_and_scan_plans_carry_hints_pointer_paths_do_not() {
    let db = build();
    let point = db.plan(&PtqQuery::eq(ATTR, 3).with_qt(0.1)).unwrap();
    for cand in &point.candidates {
        let label = cand.path.label();
        if label.starts_with("UpiHeap") || label == "UpiFullScan" {
            let hint = *cand
                .hints
                .first()
                .unwrap_or_else(|| panic!("{label} needs a hint"));
            assert!(hint.est_run_pages >= 1);
        }
    }
    // A top-k plan bounds its hinted window by k rows' worth of leaves.
    let topk = db
        .plan(&PtqQuery::eq(ATTR, 3).with_qt(0.1).with_top_k(5))
        .unwrap();
    let full_hint = point.candidates[0].hints[0];
    let topk_hint = topk.candidates[0].hints[0];
    assert!(
        topk_hint.est_run_pages <= full_hint.est_run_pages,
        "top-k window {} must not exceed the full run's {}",
        topk_hint.est_run_pages,
        full_hint.est_run_pages
    );
    assert!(
        topk_hint.est_run_pages <= 2,
        "5 rows fit in a couple of leaves: {}",
        topk_hint.est_run_pages
    );
}
