//! Property-based end-to-end tests: arbitrary small uncertain tables and
//! query mixes; every index must agree with a brute-force oracle, and the
//! cutoff partition invariant must hold for every cutoff threshold.

use proptest::prelude::*;
use std::sync::Arc;

use upi::{DiscreteUpi, Pii, UnclusteredHeap, UpiConfig};
use upi_storage::codec::{dequantize_prob, quantize_prob};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, Tuple, TupleId};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

/// Strategy: a tuple with 1–4 alternatives over a small value domain.
fn tuple_strategy(id: u64) -> impl Strategy<Value = Tuple> {
    (
        0.05f64..=1.0,
        proptest::collection::vec((0u64..8, 0.01f64..1.0), 1..4),
    )
        .prop_map(move |(exist, raw)| {
            // Dedupe values and normalize probabilities to sum <= 1.
            let mut alts: Vec<(u64, f64)> = Vec::new();
            for (v, w) in raw {
                match alts.iter_mut().find(|(av, _)| *av == v) {
                    Some((_, aw)) => *aw += w,
                    None => alts.push((v, w)),
                }
            }
            let total: f64 = alts.iter().map(|(_, w)| w).sum();
            let scale = 0.999 / total.max(1.0);
            let alts: Vec<(u64, f64)> = alts
                .into_iter()
                .map(|(v, w)| (v, (w * scale).max(1e-6)))
                .collect();
            Tuple::new(
                TupleId(id),
                exist,
                vec![
                    Field::Certain(Datum::U64(id)),
                    Field::Discrete(DiscretePmf::new(alts)),
                ],
            )
        })
}

fn table_strategy() -> impl Strategy<Value = Vec<Tuple>> {
    (1usize..40).prop_flat_map(|n| (0..n as u64).map(tuple_strategy).collect::<Vec<_>>())
}

fn oracle(tuples: &[Tuple], value: u64, qt: f64) -> Vec<u64> {
    let mut out: Vec<u64> = tuples
        .iter()
        .filter(|t| {
            let conf = t.confidence_eq(1, value);
            conf > 0.0 && dequantize_prob(quantize_prob(conf)) >= qt
        })
        .map(|t| t.id.0)
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn upi_and_pii_match_oracle(
        tuples in table_strategy(),
        cutoff in 0.0f64..=0.8,
        value in 0u64..8,
        qt in 0.0f64..=0.9,
    ) {
        let st = store();
        let mut upi = DiscreteUpi::create(
            st.clone(),
            "u",
            1,
            UpiConfig { cutoff, page_size: 1024, ..UpiConfig::default() },
        ).unwrap();
        upi.bulk_load(&tuples).unwrap();
        let mut heap = UnclusteredHeap::create(st.clone(), "h", 1024).unwrap();
        heap.bulk_load(&tuples).unwrap();
        let mut pii = Pii::create(st, "p", 1, 1024).unwrap();
        pii.bulk_load(&tuples).unwrap();

        let want = oracle(&tuples, value, qt);
        let mut got_upi: Vec<u64> = upi.ptq(value, qt).unwrap()
            .iter().map(|r| r.tuple.id.0).collect();
        got_upi.sort_unstable();
        let mut got_pii: Vec<u64> = pii.ptq(&heap, value, qt).unwrap()
            .iter().map(|r| r.tuple.id.0).collect();
        got_pii.sort_unstable();
        prop_assert_eq!(&got_upi, &want, "upi cutoff={}", cutoff);
        prop_assert_eq!(&got_pii, &want, "pii");
    }

    #[test]
    fn cutoff_partition_invariant(
        tuples in table_strategy(),
        cutoff in 0.0f64..=1.0,
    ) {
        // heap entries + cutoff entries == total alternatives, and the
        // first alternative of every tuple is always heap-resident.
        let st = store();
        let mut upi = DiscreteUpi::create(
            st,
            "u",
            1,
            UpiConfig { cutoff, page_size: 1024, ..UpiConfig::default() },
        ).unwrap();
        upi.bulk_load(&tuples).unwrap();
        let total_alts: u64 = tuples
            .iter()
            .map(|t| t.discrete(1).support_len() as u64)
            .sum();
        prop_assert_eq!(
            upi.heap_stats().entries + upi.cutoff_index().len(),
            total_alts
        );
        for t in &tuples {
            let (v, p) = t.discrete(1).first();
            let folded = p * t.exist;
            prop_assert!(
                upi.fetch_by_pointer(v, folded, t.id.0).unwrap().is_some(),
                "first alternative of {:?} must be in the heap", t.id
            );
        }
        // Every cutoff pointer dereferences to the right tuple.
        for value in 0..8u64 {
            for cp in upi.cutoff_index().scan(value, 0.0).unwrap() {
                let t = upi
                    .fetch_by_pointer(cp.first_value, cp.first_prob, cp.tid)
                    .unwrap();
                prop_assert!(t.is_some(), "dangling cutoff pointer");
                prop_assert_eq!(t.unwrap().id.0, cp.tid);
            }
        }
    }

    #[test]
    fn top_k_is_prefix_of_full_sort(
        tuples in table_strategy(),
        value in 0u64..8,
        k in 1usize..10,
    ) {
        let st = store();
        let mut upi = DiscreteUpi::create(
            st,
            "u",
            1,
            UpiConfig { page_size: 1024, ..UpiConfig::default() },
        ).unwrap();
        upi.bulk_load(&tuples).unwrap();
        let top = upi::exec::top_k(&upi, value, k).unwrap();
        let all = upi.ptq(value, 0.0).unwrap();
        prop_assert_eq!(top.len(), all.len().min(k));
        for (a, b) in top.iter().zip(all.iter()) {
            prop_assert!((a.confidence - b.confidence).abs() < 1e-9);
        }
    }
}
