//! Maintenance-under-DML oracle: background fracture compaction must be
//! invisible to queries and safe to kill mid-step.
//!
//! Two arms, each a seeded sweep (20 seeds by default, or the
//! comma-separated `UPI_MAINT_SEEDS` list — a failing seed reruns with
//! `UPI_MAINT_SEEDS=<seed>`):
//!
//! 1. **Twin equivalence** — interleave a randomized DML workload with
//!    [`maintenance_tick`](upi_query::UncertainDb::maintenance_tick)
//!    calls on one session while an identically-mutated twin never
//!    maintains, and require every query shape (point / secondary /
//!    range / top-k / group) to fingerprint-match the twin after every
//!    tick. Compaction reorganizes the physical chain only; the
//!    possible-worlds answers may never move.
//! 2. **Kill-during-merge-step** — arm a kill-at-op fault plan, drive
//!    ticks until the device dies mid-step, recover, and require the
//!    live set to equal the full DML fold: a merge step changes no
//!    logical state, so whether or not its WAL record became durable,
//!    recovery must land on exactly the pre-kill possible worlds.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upi::{FracturedConfig, MaintenancePolicy, TableLayout, UpiConfig};
use upi_query::{PtqQuery, QueryOutput, UncertainDb};
use upi_storage::{DiskConfig, FaultPlan, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

fn schema() -> Schema {
    Schema::new(vec![
        ("g", FieldKind::U64),
        ("prim", FieldKind::Discrete),
        ("sec", FieldKind::Discrete),
    ])
}

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

fn gen_pmf(rng: &mut StdRng, domain: u64, max_alts: usize) -> DiscretePmf {
    let n = rng.gen_range(1..=max_alts);
    let mut values: Vec<u64> = (0..domain).collect();
    for i in (1..values.len()).rev() {
        let j = rng.gen_range(0..=i);
        values.swap(i, j);
    }
    let mut alts: Vec<(u64, f64)> = values
        .into_iter()
        .take(n)
        .map(|v| (v, rng.gen_range(0.05f64..1.0)))
        .collect();
    let total: f64 = alts.iter().map(|(_, w)| w).sum();
    let scale = rng.gen_range(0.5f64..0.98) / total;
    for (_, w) in &mut alts {
        *w = (*w * scale).max(1e-6);
    }
    DiscretePmf::new(alts)
}

fn gen_tuple(rng: &mut StdRng, id: u64) -> Tuple {
    let exist = rng.gen_range(0.05f64..=1.0);
    Tuple::new(
        TupleId(id),
        exist,
        vec![
            Field::Certain(Datum::U64(id % 4)),
            Field::Discrete(gen_pmf(rng, 8, 3)),
            Field::Discrete(gen_pmf(rng, 6, 2)),
        ],
    )
}

fn fingerprint(out: &QueryOutput) -> Vec<(u64, u64)> {
    match &out.groups {
        Some(g) => g.clone(),
        None => {
            let mut rows: Vec<(u64, u64)> = out
                .rows
                .iter()
                .map(|r| (r.tuple.id.0, (r.confidence * 1e9).round() as u64))
                .collect();
            rows.sort_unstable();
            rows
        }
    }
}

/// Every query shape the planner distinguishes, with seed-varied
/// constants.
fn query_shapes(rng: &mut StdRng) -> Vec<PtqQuery> {
    vec![
        PtqQuery::eq(1, rng.gen_range(0..8)).with_qt(rng.gen_range(0.0f64..0.8)),
        PtqQuery::eq(1, rng.gen_range(0..8)).with_qt(0.0),
        PtqQuery::eq(2, rng.gen_range(0..6)).with_qt(rng.gen_range(0.0f64..0.6)),
        PtqQuery::eq(1, rng.gen_range(0..8))
            .with_qt(rng.gen_range(0.0f64..0.5))
            .with_top_k(3),
        PtqQuery::range(1, 1, 5).with_qt(rng.gen_range(0.0f64..0.6)),
        PtqQuery::range(1, 0, 7).with_qt(0.1).with_group_count(0),
    ]
}

/// A policy that fires on any fracture chain the moment there is any
/// traffic at all: the oracle wants steps to happen, the profitability
/// gate is exercised by the unit tests.
fn eager_policy() -> MaintenancePolicy {
    MaintenancePolicy {
        horizon_ms: 1e12,
        step_budget_ms: f64::INFINITY,
        ..MaintenancePolicy::default()
    }
}

fn fractured_layout(rng: &mut StdRng) -> TableLayout {
    TableLayout::FracturedUpi(FracturedConfig {
        upi: UpiConfig {
            cutoff: rng.gen_range(0.0f64..0.5),
            ..UpiConfig::default()
        },
        buffer_ops: 0,
    })
}

fn assert_twins_agree(
    seed: u64,
    step: usize,
    m: &UncertainDb,
    twin: &UncertainDb,
    rng: &mut StdRng,
) {
    for q in query_shapes(rng) {
        let got = fingerprint(&m.query(&q).unwrap());
        let want = fingerprint(&twin.query(&q).unwrap());
        assert_eq!(
            got, want,
            "seed {seed} step {step}: maintained session diverged from the \
             unmaintained twin on {q:?}"
        );
    }
}

fn run_twin_seed(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_ACED);
    let layout = fractured_layout(&mut rng);
    let mut m = UncertainDb::create(store(), "m", schema(), 1, layout.clone()).unwrap();
    let mut twin = UncertainDb::create(store(), "w", schema(), 1, layout).unwrap();
    for db in [&mut m, &mut twin] {
        db.add_secondary(2).unwrap();
    }
    if seed.is_multiple_of(2) {
        // Half the seeds run the maintained arm durable, so ticks log
        // `MergeStep` records through the WAL.
        m.enable_durability().unwrap();
    }
    m.set_maintenance_policy(eager_policy());

    let mut live: BTreeMap<u64, Tuple> = BTreeMap::new();
    let mut next_id = 0u64;
    let mut ticks = 0u64;
    let total_ops = rng.gen_range(50..90);
    for step in 0..total_ops {
        let roll = rng.gen_range(0u32..100);
        if roll < 40 || live.is_empty() {
            let t = gen_tuple(&mut rng, next_id);
            next_id += 1;
            m.insert_tuple(&t).unwrap();
            twin.insert_tuple(&t).unwrap();
            live.insert(t.id.0, t);
        } else if roll < 52 {
            let ids: Vec<u64> = live.keys().copied().collect();
            let victim = live[&ids[rng.gen_range(0..ids.len())]].clone();
            m.delete(&victim).unwrap();
            twin.delete(&victim).unwrap();
            live.remove(&victim.id.0);
        } else if roll < 64 {
            let ids: Vec<u64> = live.keys().copied().collect();
            let old = live[&ids[rng.gen_range(0..ids.len())]].clone();
            let new = gen_tuple(&mut rng, old.id.0);
            m.update(&old, &new).unwrap();
            twin.update(&old, &new).unwrap();
            live.insert(new.id.0, new);
        } else if roll < 80 {
            // Grow both fracture chains identically; only `m` ever
            // compacts its own.
            m.flush().unwrap();
            twin.flush().unwrap();
        } else if roll < 90 {
            // Traffic so the tick sees a nonzero rate.
            let _ = m.ptq(rng.gen_range(0..8), rng.gen_range(0.0f64..0.8));
        } else {
            if let Some(report) = m.maintenance_tick().unwrap() {
                assert!(report.components >= 2, "seed {seed}: vacuous step");
                assert!(report.eliminated >= 1);
                ticks += 1;
                assert_twins_agree(seed, step, &m, &twin, &mut rng);
            }
        }
    }
    // Drain whatever is left, then the final full-shape comparison.
    while let Some(_report) = m.maintenance_tick().unwrap() {
        ticks += 1;
        if ticks > 200 {
            panic!("seed {seed}: maintenance never converges");
        }
    }
    assert_twins_agree(seed, total_ops, &m, &twin, &mut rng);
    if ticks > 0 {
        let metrics = m.metrics();
        assert!(metrics.merge_steps >= ticks, "seed {seed}: steps uncounted");
    }
    ticks
}

fn run_kill_seed(seed: u64) -> bool {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let st = Store::new(
        Arc::new(SimDisk::new(DiskConfig {
            wal_group_ops: 1, // every DML durable on its own
            ..DiskConfig::default()
        })),
        8 << 20,
    );
    let layout = fractured_layout(&mut rng);
    let mut db = UncertainDb::create(st.clone(), "t", schema(), 1, layout).unwrap();
    db.add_secondary(2).unwrap();
    db.enable_durability().unwrap();
    db.set_maintenance_policy(eager_policy());

    let mut live: BTreeMap<u64, Tuple> = BTreeMap::new();
    let mut next_id = 0u64;
    for _ in 0..rng.gen_range(25..45) {
        let roll = rng.gen_range(0u32..100);
        if roll < 55 || live.is_empty() {
            let t = gen_tuple(&mut rng, next_id);
            next_id += 1;
            db.insert_tuple(&t).unwrap();
            live.insert(t.id.0, t);
        } else if roll < 70 {
            let ids: Vec<u64> = live.keys().copied().collect();
            let victim = live[&ids[rng.gen_range(0..ids.len())]].clone();
            db.delete(&victim).unwrap();
            live.remove(&victim.id.0);
        } else {
            db.flush().unwrap();
        }
    }
    db.sync_wal().unwrap();
    // Traffic before the fault is armed, so the tick has a rate to price.
    for _ in 0..4 {
        let _ = db.ptq(rng.gen_range(0..8), 0.1);
    }

    // Cold cache: the steps must read their components off the device,
    // giving the kill plan real page operations to land on.
    st.go_cold();
    st.disk
        .set_fault_plan(FaultPlan::kill_at(rng.gen_range(0..40)));
    let mut died = false;
    for _ in 0..32 {
        match db.maintenance_tick() {
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(_) => {
                died = true;
                break;
            }
        }
    }
    drop(db);

    // A merge step never changes logical state: durable or not, lost or
    // committed, recovery must land on the full DML fold.
    let (rdb, _info) = UncertainDb::recover(st.clone(), "t").unwrap();
    let mut recovered = rdb.table().live_tuples().unwrap();
    recovered.sort_by_key(|t| t.id.0);
    let expected: Vec<Tuple> = live.values().cloned().collect();
    assert_eq!(
        recovered, expected,
        "seed {seed}: kill-during-merge-step recovery (died={died}) must \
         land on the possible-worlds state"
    );
    let mut rdb = rdb;
    rdb.insert_tuple(&gen_tuple(&mut rng, next_id)).unwrap();
    rdb.sync_wal().unwrap();
    assert!(rdb.table().read_only_reason().is_none());
    died
}

fn seeds() -> Vec<u64> {
    match std::env::var("UPI_MAINT_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| p.trim().parse().expect("UPI_MAINT_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=20).collect(),
    }
}

#[test]
fn maintenance_under_dml_matches_the_unmaintained_twin() {
    let mut total_ticks = 0u64;
    for seed in seeds() {
        eprintln!("maintenance twin oracle: seed {seed}");
        total_ticks += run_twin_seed(seed);
    }
    // Single-seed reruns may legitimately not tick; the sweep must.
    if seeds().len() > 1 {
        assert!(
            total_ticks > 0,
            "the sweep never performed a merge step — the oracle is vacuous"
        );
    }
}

#[test]
fn kill_during_merge_step_recovers_the_possible_worlds_state() {
    let mut deaths = 0u32;
    for seed in seeds() {
        eprintln!("maintenance kill oracle: seed {seed}");
        if run_kill_seed(seed) {
            deaths += 1;
        }
    }
    if seeds().len() > 1 {
        assert!(deaths > 0, "no seed died mid-step — the kill arm never bit");
    }
}
