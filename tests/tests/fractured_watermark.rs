//! Watermark-bounded fracture-parallel top-k.
//!
//! A fractured point merge cannot bound any single component's cutoff
//! scan by k: a newer fracture's delete set may suppress arbitrarily
//! many of that component's most-confident candidates (which is why
//! `FracturedUpi::ptq_run` historically scanned each cutoff list
//! unbounded). The sound bound is *global*: the running k-th-highest
//! confidence over surviving rows already seen — suppression only ever
//! removes rows, so once k survivors sit at/above the watermark, every
//! probability-descending component list is irrelevant from its first
//! below-watermark entry onward.
//!
//! These tests pin both halves of the claim:
//! * for random k, fracture counts, delete patterns, and insert-buffer
//!   shapes, the bounded merge's first k rows are **byte-identical**
//!   (tid and confidence bits) to the unbounded merge's and to the
//!   batch `ptq` prefix;
//! * on a suppression-heavy table — thousands of cutoff entries whose
//!   tuples a newer fracture deleted — `PoolCounters` shows strictly
//!   fewer pages read once the components' cutoff lists exceed the k
//!   surviving rows the query needs.

use std::sync::Arc;

use upi::{FracturedConfig, FracturedUpi, PtqResult, UpiConfig};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, Tuple, TupleId};

/// The queried primary value every interesting row targets.
const QV: u64 = 7;

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 16 << 20)
}

/// A tuple whose *first* alternative is `(first_v, first_p)`, optionally
/// with a second (lower-probability) alternative.
fn tuple(id: u64, first_v: u64, first_p: f64, second: Option<(u64, f64)>) -> Tuple {
    let mut alts = vec![(first_v, first_p)];
    if let Some(s) = second {
        alts.push(s);
    }
    Tuple::new(
        TupleId(id),
        1.0,
        vec![
            Field::Certain(Datum::Str(format!("t{id}"))),
            Field::Discrete(DiscretePmf::new(alts)),
        ],
    )
}

/// Deterministic splitmix-style generator for the randomized shapes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn key(r: &PtqResult) -> (u64, u64) {
    (r.tuple.id.0, r.confidence.to_bits())
}

/// First `k` rows of the merge, bounded or unbounded.
fn first_k(f: &FracturedUpi, qt: f64, k: usize, bounded: bool) -> Vec<(u64, u64)> {
    let limit = if bounded { Some(k) } else { None };
    f.ptq_run(QV, qt, limit)
        .unwrap()
        .take(k)
        .map(|r| key(&r.unwrap()))
        .collect()
}

#[test]
fn bounded_topk_is_byte_identical_for_random_shapes() {
    let mut rng = Rng(0x5eed_cafe);
    for trial in 0..12 {
        let st = store();
        let cfg = UpiConfig {
            cutoff: 0.5,
            page_size: 4096,
            ..UpiConfig::default()
        };
        let mut f = FracturedUpi::create(
            st.clone(),
            &format!("wm{trial}"),
            1,
            &[],
            FracturedConfig {
                upi: cfg,
                buffer_ops: 0,
            },
        )
        .unwrap();

        // Main: a few high-confidence heap rows at QV plus a long
        // descending cutoff list (second alternatives below C).
        let n_donors = 300 + rng.below(300) as usize;
        let n_heads = rng.below(5) as usize;
        let mut initial = Vec::new();
        for i in 0..n_donors as u64 {
            let p = 0.45 - 0.44 * i as f64 / n_donors as f64;
            initial.push(tuple(i, 1_000 + i, 0.55, Some((QV, p))));
        }
        for i in 0..n_heads as u64 {
            initial.push(tuple(10_000 + i, QV, 0.9 - i as f64 * 0.02, None));
        }
        f.load_initial(&initial).unwrap();

        // 1–3 fracture events of interleaved deletes (suppressing donor
        // cutoff entries) and fresh inserts at QV.
        let n_fractures = 1 + rng.below(3);
        for event in 0..n_fractures {
            for _ in 0..(n_donors as u64 / (n_fractures * 2)) {
                f.delete(TupleId(rng.below(n_donors as u64))).unwrap();
            }
            for i in 0..rng.below(4) {
                let id = 20_000 + event * 100 + i;
                f.insert(tuple(id, QV, 0.6 + (id % 7) as f64 * 0.05, None))
                    .unwrap();
            }
            f.flush().unwrap();
        }
        // Sometimes leave rows in the insert buffer (they seed the
        // watermark before any on-disk component is read).
        for i in 0..rng.below(10) {
            f.insert(tuple(30_000 + i, QV, 0.95 - i as f64 * 0.01, None))
                .unwrap();
        }

        for k in [1usize, 2, 3, 5, 9, 17] {
            for qt in [0.0, 0.2] {
                let unbounded = first_k(&f, qt, k, false);
                let bounded = first_k(&f, qt, k, true);
                assert_eq!(
                    bounded, unbounded,
                    "trial {trial} k={k} qt={qt}: bounded merge diverged"
                );
                let batch: Vec<(u64, u64)> =
                    f.ptq(QV, qt).unwrap().iter().take(k).map(key).collect();
                assert_eq!(
                    bounded, batch,
                    "trial {trial} k={k} qt={qt}: merge prefix != batch prefix"
                );
            }
        }
    }
}

#[test]
fn watermark_cuts_cutoff_page_reads_under_suppression() {
    let st = store();
    let cfg = UpiConfig {
        cutoff: 0.5,
        page_size: 4096,
        ..UpiConfig::default()
    };
    let mut f = FracturedUpi::create(
        st.clone(),
        "wmio",
        1,
        &[],
        FracturedConfig {
            upi: cfg,
            buffer_ops: 0,
        },
    )
    .unwrap();

    // Main: two high-confidence heap rows at QV and 4000 cutoff entries
    // (descending 0.45 → 0.01) from donor tuples clustered elsewhere.
    const N_DONORS: u64 = 4_000;
    let mut initial = Vec::new();
    for i in 0..N_DONORS {
        let p = 0.45 - 0.44 * i as f64 / N_DONORS as f64;
        initial.push(tuple(i, 1_000_000 + i, 0.55, Some((QV, p))));
    }
    initial.push(tuple(100_000, QV, 0.90, None));
    initial.push(tuple(100_001, QV, 0.88, None));
    f.load_initial(&initial).unwrap();

    // A newer fracture deletes EVERY donor: main's whole cutoff list at
    // QV is suppressed, which the unbounded merge can only prove by
    // scanning it end to end.
    for i in 0..N_DONORS {
        f.delete(TupleId(i)).unwrap();
    }
    f.flush().unwrap();

    // Six buffered survivors above every cutoff entry: with k = 8 the
    // watermark (8th-highest surviving confidence, 0.85) is active
    // before any component's cutoff list is consulted, so the bounded
    // scan stops at the first entry (0.45 < 0.85).
    for i in 0..6u64 {
        f.insert(tuple(200_000 + i, QV, 0.95 - i as f64 * 0.02, None))
            .unwrap();
    }

    const K: usize = 8;
    let measure = |bounded: bool| -> (Vec<(u64, u64)>, u64) {
        st.go_cold();
        let before = st.pool.counters();
        let rows = first_k(&f, 0.0, K, bounded);
        (rows, st.pool.counters().since(&before).pages_read())
    };
    let (unbounded_rows, unbounded_pages) = measure(false);
    let (bounded_rows, bounded_pages) = measure(true);

    assert_eq!(
        bounded_rows, unbounded_rows,
        "the watermark must not change the top-{K} answer"
    );
    assert_eq!(
        bounded_rows.len(),
        K,
        "8 survivors exist (6 buffered + 2 heap)"
    );
    assert!(
        bounded_pages < unbounded_pages,
        "watermark must cut cutoff-list page reads: bounded {bounded_pages} \
         vs unbounded {unbounded_pages}"
    );
    assert!(
        unbounded_pages - bounded_pages >= 10,
        "the 4000-entry suppressed cutoff list spans dozens of pages; the \
         bound should skip nearly all of them: bounded {bounded_pages} vs \
         unbounded {unbounded_pages}"
    );
}

#[test]
fn watermark_cuts_suppressed_heap_run_reads_pre_decode() {
    // The companion bound on the *heap run*: a long stretch of a
    // component's heap run whose tuples a newer delete suppressed used to
    // be scanned entry-by-entry (decode, test, discard) while hunting the
    // next survivor. The keyed entries carry their confidence, so the
    // below-watermark cutoff applies **before decoding**: the first keyed
    // entry under the watermark ends the component's run outright, page
    // reads included.
    let st = store();
    let cfg = UpiConfig {
        cutoff: 0.5,
        page_size: 4096,
        ..UpiConfig::default()
    };
    let mut f = FracturedUpi::create(
        st.clone(),
        "wmheap",
        1,
        &[],
        FracturedConfig {
            upi: cfg,
            buffer_ops: 0,
        },
    )
    .unwrap();

    // Main: a long heap run at QV — 3000 single-alternative tuples with
    // confidences descending 0.45 → 0.01 (first alternatives are always
    // heap-resident; no second alternatives, so the cutoff list is empty
    // and every page the query reads belongs to the heap run).
    const N_RUN: u64 = 3_000;
    let initial: Vec<Tuple> = (0..N_RUN)
        .map(|i| tuple(i, QV, 0.45 - 0.44 * i as f64 / N_RUN as f64, None))
        .collect();
    f.load_initial(&initial).unwrap();

    // Buffered deletes suppress the ENTIRE run; buffered survivors above
    // it seed the watermark (k of them, all at confidence > 0.45).
    for i in 0..N_RUN {
        f.delete(TupleId(i)).unwrap();
    }
    const K: usize = 4;
    for i in 0..K as u64 {
        f.insert(tuple(300_000 + i, QV, 0.95 - i as f64 * 0.02, None))
            .unwrap();
    }

    let measure = |bounded: bool| -> (Vec<(u64, u64)>, u64) {
        st.go_cold();
        let before = st.pool.counters();
        let rows = first_k(&f, 0.0, K, bounded);
        (rows, st.pool.counters().since(&before).pages_read())
    };
    let (unbounded_rows, unbounded_pages) = measure(false);
    let (bounded_rows, bounded_pages) = measure(true);

    assert_eq!(
        bounded_rows, unbounded_rows,
        "the pre-decode bound must not change the top-{K} answer"
    );
    assert_eq!(bounded_rows.len(), K, "the buffered survivors qualify");
    assert!(
        bounded_pages < unbounded_pages,
        "the suppressed heap stretch must not be scanned: bounded \
         {bounded_pages} vs unbounded {unbounded_pages}"
    );
    assert!(
        unbounded_pages - bounded_pages >= 10,
        "3000 suppressed heap entries span dozens of pages; the bound \
         should read at most the run's first leaf: bounded {bounded_pages} \
         vs unbounded {unbounded_pages}"
    );
}
