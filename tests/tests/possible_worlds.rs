//! Semantic oracle: the confidences the indexes report must equal the
//! possible-worlds probabilities (§1 of the paper), computed by exhaustive
//! enumeration on small tables.

use std::sync::Arc;

use upi::{DiscreteUpi, Pii, UnclusteredHeap, UpiConfig};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::worlds::{confidence_from_worlds, enumerate_worlds};
use upi_uncertain::{Datum, DiscretePmf, Field, Tuple, TupleId};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 4 << 20)
}

/// A small randomized-but-deterministic uncertain table.
fn tiny_table(seed: u64, n: usize) -> Vec<Tuple> {
    let mut state = seed | 1;
    let mut unif = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|i| {
            let exist = 0.5 + unif() * 0.5;
            let k = 1 + (unif() * 3.0) as usize;
            let mut rem = 1.0;
            let mut alts = Vec::new();
            for j in 0..k {
                let p = if j == k - 1 {
                    rem * (0.3 + unif() * 0.7)
                } else {
                    rem * (0.2 + unif() * 0.5)
                };
                alts.push(((i as u64 * 4 + j as u64) % 6, p.max(1e-4)));
                rem -= p;
            }
            // Value ids may collide across j; dedupe by summing.
            let mut merged: Vec<(u64, f64)> = Vec::new();
            for (v, p) in alts {
                match merged.iter_mut().find(|(mv, _)| *mv == v) {
                    Some((_, mp)) => *mp += p,
                    None => merged.push((v, p)),
                }
            }
            Tuple::new(
                TupleId(i as u64),
                exist,
                vec![
                    Field::Certain(Datum::Str(format!("t{i}"))),
                    Field::Discrete(DiscretePmf::new(merged)),
                ],
            )
        })
        .collect()
}

#[test]
fn index_confidences_equal_world_mass() {
    for seed in [3, 17, 99] {
        let tuples = tiny_table(seed, 7);
        let worlds = enumerate_worlds(&tuples.to_vec(), 1);
        let st = store();
        let mut upi =
            DiscreteUpi::create(st.clone(), &format!("u{seed}"), 1, UpiConfig::default()).unwrap();
        upi.bulk_load(&tuples).unwrap();
        let mut heap = UnclusteredHeap::create(st.clone(), &format!("h{seed}"), 8192).unwrap();
        heap.bulk_load(&tuples).unwrap();
        let mut pii = Pii::create(st.clone(), &format!("p{seed}"), 1, 8192).unwrap();
        pii.bulk_load(&tuples).unwrap();

        for value in 0..6u64 {
            let from_upi = upi.ptq(value, 0.0).unwrap();
            let from_pii = pii.ptq(&heap, value, 0.0).unwrap();
            assert_eq!(from_upi.len(), from_pii.len());
            for r in &from_upi {
                let oracle = confidence_from_worlds(&tuples, &worlds, r.tuple.id, value);
                assert!(
                    (r.confidence - oracle).abs() < 1e-6,
                    "seed={seed} value={value} tuple={:?}: index says {}, \
                     worlds say {oracle}",
                    r.tuple.id,
                    r.confidence
                );
            }
        }
    }
}

#[test]
fn threshold_filter_matches_world_semantics() {
    let tuples = tiny_table(7, 6);
    let worlds = enumerate_worlds(&tuples, 1);
    let st = store();
    let mut upi = DiscreteUpi::create(st.clone(), "u", 1, UpiConfig::default()).unwrap();
    upi.bulk_load(&tuples).unwrap();
    for value in 0..6u64 {
        for qt in [0.05, 0.25, 0.6] {
            let got: Vec<u64> = upi
                .ptq(value, qt)
                .unwrap()
                .iter()
                .map(|r| r.tuple.id.0)
                .collect();
            for t in &tuples {
                let oracle = confidence_from_worlds(&tuples, &worlds, t.id, value);
                let should_match = oracle >= qt + 1e-9;
                let does = got.contains(&t.id.0);
                // Quantization can flip results exactly at the threshold;
                // allow the boundary band.
                if (oracle - qt).abs() > 1e-6 {
                    assert_eq!(
                        should_match, does,
                        "value={value} qt={qt} tuple={:?} oracle={oracle}",
                        t.id
                    );
                }
            }
        }
    }
}
