//! Cost-model calibration convergence oracle.
//!
//! The session (`UncertainDb`) records an `(estimated, observed)` sample
//! after every executed query and `recalibrate()` refits the per-path-kind
//! scales (bounded least squares on the dominant term, in log space).
//! Asserted here:
//!
//! 1. a deliberately **mispriced** model converges: the estimated/observed
//!    ratio per exercised path kind tightens monotonically across refit
//!    passes on a fixed workload (the simulator is deterministic, so the
//!    observed side is identical each round — all movement is the model's);
//! 2. an **already-calibrated** model is a fixed point: refitting again on
//!    the same samples changes no coefficient (the bounded refit does not
//!    oscillate);
//! 3. calibration never changes answers — only plan pricing.

use std::sync::Arc;

use upi::{TableLayout, UpiConfig};
use upi_query::{PathKind, PtqQuery, UncertainDb};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

fn schema() -> Schema {
    Schema::new(vec![
        ("payload", FieldKind::Str),
        ("institution", FieldKind::Discrete),
        ("country", FieldKind::Discrete),
    ])
}

/// A UPI-clustered table big enough that the data-dependent (dominant)
/// cost terms outweigh the file opens, with a skewed clustering value
/// (so a point run is long), and a secondary whose attribute correlates
/// with the clustering attribute (institution -> country), like the
/// paper's Query 3 setup.
/// Row `i` of the calibration workload, reconstructible for deletes.
fn cal_tuple(i: u64) -> Tuple {
    // A sixth of the rows cluster on the hot institution 3: long
    // enough that the run read dominates the opens, short enough
    // that a 2x-overpriced run still beats the full scan.
    let inst = if i.is_multiple_of(6) { 3 } else { i % 40 };
    let country = inst % 12;
    let p = 0.55 + (i % 4) as f64 * 0.1;
    Tuple::new(
        TupleId(i),
        0.95,
        vec![
            Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(400)))),
            Field::Discrete(DiscretePmf::new(vec![
                (inst, p),
                (inst + 40, (1.0 - p) / 2.0),
            ])),
            Field::Discrete(DiscretePmf::new(vec![(country, 1.0)])),
        ],
    )
}

fn calibration_db() -> UncertainDb {
    let mut db = UncertainDb::create(
        store(),
        "t",
        schema(),
        1,
        TableLayout::Upi(UpiConfig::default()),
    )
    .unwrap();
    db.add_secondary(2).unwrap();
    let tuples: Vec<Tuple> = (0..12_000u64).map(cal_tuple).collect();
    // Bulk-load so the clustered runs are physically contiguous, like
    // every benchmark setup — the §6 models price clustered runs as
    // sequential reads.
    db.load(&tuples).unwrap();
    db
}

/// The fixed workload: one query per discrete path kind the session can
/// exercise on this layout.
fn workload() -> Vec<(PathKind, PtqQuery)> {
    vec![
        (PathKind::PointMerge, PtqQuery::eq(1, 3).with_qt(0.2)),
        (PathKind::RangeRun, PtqQuery::range(1, 5, 20).with_qt(0.2)),
        (PathKind::SecondaryProbe, PtqQuery::eq(2, 2).with_qt(0.3)),
    ]
}

/// Mean absolute log-error of estimate vs. observation per kind, one
/// calibration round. Queries run cold so the observed side is the real
/// device cost (and identical across rounds — the simulator is
/// deterministic).
fn run_round(db: &UncertainDb) -> Vec<(PathKind, f64, Vec<u64>)> {
    let mut out = Vec::new();
    for (kind, q) in workload() {
        let plan = db.plan(&q).unwrap();
        assert_eq!(
            plan.path().kind(),
            kind,
            "workload query must exercise its kind:\n{}",
            plan.explain()
        );
        let est = plan.est_ms();
        if std::env::var("DBG_CAL").is_ok() {
            for c in &plan.candidates {
                eprintln!(
                    "{:?} {} fixed={:.1} dom={:.1} scale={:.2} est={:.1}",
                    kind,
                    c.path.label(),
                    c.cost.fixed_ms,
                    c.cost.dominant_ms,
                    c.cost.scale,
                    c.est_ms
                );
            }
        }
        db.table().store().go_cold();
        // Observe plan + execute, the same window the session samples:
        // on a cold cache the plan phase pays some of the opens/descents
        // the estimate prices.
        let before = db.table().store().pool.device_stats();
        let out_q = db.query(&q).unwrap();
        let obs = db
            .table()
            .store()
            .pool
            .device_stats()
            .since(&before)
            .total_ms();
        assert!(obs > 0.0, "cold query must charge the device");
        assert!(out_q.observed_ms().is_some(), "session registers the pool");
        if std::env::var("DBG_CAL").is_ok() {
            eprintln!("{kind:?} est={est:.1} obs={obs:.1} io={:?}", out_q.io);
        }
        // Two more identical cold executions so every round leaves each
        // kind with enough samples to clear MIN_REFIT_SAMPLES.
        for _ in 0..2 {
            db.table().store().go_cold();
            db.query(&q).unwrap();
        }
        let mut ids: Vec<u64> = out_q.rows.iter().map(|r| r.tuple.id.0).collect();
        ids.sort_unstable();
        out.push(((kind), (est / obs).ln().abs(), ids));
    }
    out
}

#[test]
fn mispriced_model_converges_monotonically() {
    let db = calibration_db();
    // Seed a deliberately mispriced model: every exercised kind overpriced
    // 2x (small enough that the index paths still beat the scans, so the
    // chosen path — and therefore the observed side — stays comparable).
    let mispriced = db
        .cost_model()
        .with_scale(PathKind::PointMerge, 2.0)
        .with_scale(PathKind::RangeRun, 2.0)
        .with_scale(PathKind::SecondaryProbe, 2.0);
    db.set_cost_model(mispriced);

    let mut history: Vec<Vec<(PathKind, f64, Vec<u64>)>> = Vec::new();
    for _ in 0..4 {
        history.push(run_round(&db));
        let outcomes = db.recalibrate();
        if std::env::var("DBG_CAL").is_ok() {
            for o in &outcomes {
                eprintln!(
                    "refit {:?}: {:.3} -> {:.3} ({} samples)",
                    o.kind, o.old_scale, o.new_scale, o.samples
                );
            }
        }
        assert!(
            !outcomes.is_empty(),
            "every round feeds samples, so refits must happen"
        );
    }

    // Answers never change across calibration rounds.
    for round in &history[1..] {
        for (a, b) in history[0].iter().zip(round) {
            assert_eq!(a.2, b.2, "calibration must not change {:?} answers", a.0);
        }
    }

    // Per kind, the |ln(est/obs)| error tightens monotonically (small
    // epsilon for float noise) and ends strictly tighter than it began.
    for i in 0..workload().len() {
        let kind = history[0][i].0;
        let errs: Vec<f64> = history.iter().map(|r| r[i].1).collect();
        for w in errs.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "{kind:?}: error must not regress across refits: {errs:?}"
            );
        }
        assert!(
            *errs.last().unwrap() <= errs[0] * 0.67 + 0.02,
            "{kind:?}: error must tighten materially: {errs:?}"
        );
    }
}

#[test]
fn calibrated_model_is_a_refit_fixed_point() {
    let db = calibration_db();
    // Converge: run the workload and refit until the scales settle.
    for _ in 0..6 {
        for (_, q) in workload() {
            db.table().store().go_cold();
            db.query(&q).unwrap();
        }
        db.recalibrate();
    }
    let settled = db.cost_model();

    // No new samples, repeated refits: every coefficient must stay put —
    // the bounded refit has a fixed point, it does not oscillate.
    for _ in 0..3 {
        db.recalibrate();
        let again = db.cost_model();
        for kind in upi_query::cost::PathKind::ALL {
            assert_eq!(
                again.scale(kind),
                settled.scale(kind),
                "{kind:?} scale moved without new evidence"
            );
        }
    }
}

#[test]
fn session_records_samples_per_kind_automatically() {
    let db = calibration_db();
    assert_eq!(db.calibration_samples(PathKind::PointMerge), 0);
    db.table().store().go_cold();
    db.query(&PtqQuery::eq(1, 3).with_qt(0.2)).unwrap();
    assert_eq!(
        db.calibration_samples(PathKind::PointMerge),
        1,
        "query() must feed the store"
    );
    // A warm repeat is NOT evidence: the observed window shows a
    // cache-served execution and the store drops it.
    db.query(&PtqQuery::eq(1, 3).with_qt(0.2)).unwrap();
    assert_eq!(
        db.calibration_samples(PathKind::PointMerge),
        1,
        "warm-cache executions must be filtered"
    );
    db.table().store().go_cold();
    let (_, text) = db.run_explained(&PtqQuery::eq(1, 3).with_qt(0.2)).unwrap();
    assert_eq!(db.calibration_samples(PathKind::PointMerge), 2);
    assert!(text.contains("cost model:"), "{text}");
    // A third sample clears MIN_REFIT_SAMPLES; after a refit, explain
    // surfaces the calibrated scale and the sample count behind it.
    db.table().store().go_cold();
    db.query(&PtqQuery::eq(1, 3).with_qt(0.2)).unwrap();
    let outcomes = db.recalibrate();
    assert!(outcomes.iter().any(|o| o.kind == PathKind::PointMerge));
    let text = db.explain(&PtqQuery::eq(1, 3).with_qt(0.2)).unwrap();
    assert!(
        text.contains("raw") && text.contains("calibrated"),
        "{text}"
    );
    assert!(text.contains("3 samples"), "{text}");
}

// --- Calibration persistence across checkpoints -------------------------

/// A reopened session restores the checkpointed scales *and* the sample
/// store behind them: recovery lands exactly on the settled model, and a
/// refit with no new evidence is the same fixed point it was before the
/// restart (test 2's property, now across a durability boundary).
#[test]
fn reopened_session_restores_calibration_as_a_refit_fixed_point() {
    let mut db = calibration_db();
    db.enable_durability().unwrap();
    for _ in 0..4 {
        for (_, q) in workload() {
            db.table().store().go_cold();
            db.query(&q).unwrap();
        }
        db.recalibrate();
    }
    let settled = db.cost_model();
    db.checkpoint().unwrap();
    let store = db.table().store().clone();
    drop(db);

    let (rdb, _info) = UncertainDb::recover(store, "t").unwrap();
    for kind in PathKind::ALL {
        assert_eq!(
            rdb.cost_model().scale(kind),
            settled.scale(kind),
            "{kind:?} scale must survive the reopen exactly"
        );
    }
    // The persisted samples came along too: refitting the reopened
    // session without new evidence must not move any coefficient.
    rdb.recalibrate();
    for kind in PathKind::ALL {
        assert_eq!(
            rdb.cost_model().scale(kind),
            settled.scale(kind),
            "{kind:?} scale moved on reopen without new evidence"
        );
    }
}

/// Recovery from an *older* checkpoint (scales persisted before the
/// session converged) restores the stale model — and the reopened
/// session re-converges on the same workload to the same place.
#[test]
fn recovery_from_an_older_checkpoint_reconverges() {
    let mut db = calibration_db();
    db.enable_durability().unwrap();
    let mispriced = db
        .cost_model()
        .with_scale(PathKind::PointMerge, 2.0)
        .with_scale(PathKind::RangeRun, 2.0)
        .with_scale(PathKind::SecondaryProbe, 2.0);
    db.set_cost_model(mispriced);
    db.checkpoint().unwrap(); // the "older" checkpoint: still mispriced

    // Converge in RAM only — nothing after the checkpoint is persisted.
    let start_errs: Vec<f64> = run_round(&db).iter().map(|r| r.1).collect();
    db.recalibrate();
    for _ in 0..3 {
        run_round(&db);
        db.recalibrate();
    }
    let settled = db.cost_model();
    let store = db.table().store().clone();
    drop(db);

    let (rdb, _info) = UncertainDb::recover(store, "t").unwrap();
    for kind in [
        PathKind::PointMerge,
        PathKind::RangeRun,
        PathKind::SecondaryProbe,
    ] {
        assert!(
            (rdb.cost_model().scale(kind) - 2.0).abs() < 1e-9,
            "recovery must restore the checkpoint's stale {kind:?} scale, \
             not the in-RAM converged one: got {}",
            rdb.cost_model().scale(kind)
        );
    }

    // Same deterministic workload, same bounded refit: the reopened
    // session walks back to (essentially) the settled coefficients.
    let mut final_errs = Vec::new();
    for round in 0..4 {
        final_errs = run_round(&rdb).iter().map(|r| r.1).collect();
        rdb.recalibrate();
        let _ = round;
    }
    for (i, kind) in [
        PathKind::PointMerge,
        PathKind::RangeRun,
        PathKind::SecondaryProbe,
    ]
    .into_iter()
    .enumerate()
    {
        let got = rdb.cost_model().scale(kind);
        let want = settled.scale(kind);
        assert!(
            (got - want).abs() / want < 0.25,
            "{kind:?}: reopened session must re-converge near the settled \
             scale (got {got}, settled {want})"
        );
        assert!(
            final_errs[i] <= start_errs[i] * 0.67 + 0.02,
            "{kind:?}: pricing error must tighten after re-convergence: \
             {:.3} -> {:.3}",
            start_errs[i],
            final_errs[i]
        );
    }
}

/// The checkpoint payload carries the table's planner statistics
/// (primary `AttrStats` plus each secondary's selectivity and
/// pointer-region histograms) beside the calibration scales, and session
/// recovery restores them — the reopened planner prices
/// tailored-secondary coverage from the checkpoint-time snapshot, not
/// from a from-scratch rebuild that forgets DML history.
#[test]
fn recovered_session_restores_planner_statistics_without_warmup() {
    let mut db = calibration_db();
    db.enable_durability().unwrap();
    // Delete every row of institution 7 (i ≡ 7 mod 40 never collides
    // with the i % 6 == 0 hot-value rewrite). The cumulative statistics
    // keep the emptied per-value entries for 7 and its alternative 47;
    // a from-scratch rebuild over the surviving tuples would never
    // create them — so byte equality below proves the snapshot was
    // *restored*, not re-derived.
    for i in (7..12_000u64).step_by(40) {
        db.delete(&cal_tuple(i)).unwrap();
    }
    for (_, q) in workload() {
        db.table().store().go_cold();
        db.query(&q).unwrap();
    }
    db.checkpoint().unwrap();
    let snapshot = db.table().stats_payload();
    assert!(!snapshot.is_empty(), "UPI layouts persist statistics");
    let upi = db.table().as_upi().unwrap();
    let want_heap = upi.attr_stats().est_count_ge(3, 0.2);
    let want_sec = upi.secondaries()[0].stats().est_count_ge(2, 0.3);
    assert!(want_heap > 0.0 && want_sec > 0.0);
    let store = db.table().store().clone();
    drop(db);

    // Control arm: core-level recovery alone (no session payload
    // restore) rebuilds statistics from the surviving tuples and lands
    // on a structurally different snapshot — the deleted institution's
    // tombstoned entries are gone.
    let (t, _info) = upi::UncertainTable::recover(store.clone(), "t").unwrap();
    assert_ne!(
        t.stats_payload(),
        snapshot,
        "a rebuild must not accidentally equal the cumulative snapshot \
         (the restore test below would be vacuous)"
    );
    drop(t);

    let (rdb, _info) = UncertainDb::recover(store, "t").unwrap();
    assert_eq!(
        rdb.table().stats_payload(),
        snapshot,
        "session recovery must restore the checkpoint-time statistics"
    );
    let rupi = rdb.table().as_upi().unwrap();
    assert!((rupi.attr_stats().est_count_ge(3, 0.2) - want_heap).abs() < 1e-9);
    assert!(
        (rupi.secondaries()[0].stats().est_count_ge(2, 0.3) - want_sec).abs() < 1e-9,
        "secondary selectivity must price like the pre-crash session"
    );
}

// --- CalibrationStore edge behaviour ------------------------------------

#[test]
fn sample_cap_evicts_oldest_first() {
    use upi_query::cost::CalibrationStore;
    use upi_query::CostModel;

    let mut store = CalibrationStore::new();
    let kind = PathKind::Scan;
    // 256 "old" observations at 4x the estimate, then 512 "new" ones at
    // 0.25x. The per-kind ring holds 512: if eviction is oldest-first,
    // every old sample is gone and the fit sees a uniform 0.25 ratio.
    for _ in 0..256 {
        store.record(kind, 0.0, 10.0, 40.0);
    }
    for _ in 0..512 {
        store.record(kind, 0.0, 10.0, 2.5);
    }
    assert_eq!(store.len(kind), 512, "ring must cap at 512 per kind");

    let mut model = CostModel::from_disk(&DiskConfig::default());
    model.refit(&store);
    assert!(
        (model.scale(kind) - 0.25).abs() < 1e-9,
        "a surviving old 4x sample would drag the geometric mean above \
         0.25: got {}",
        model.scale(kind)
    );
}

#[test]
fn warm_filter_keeps_the_exact_half_estimate_boundary() {
    use upi_query::cost::CalibrationStore;

    let mut store = CalibrationStore::new();
    let kind = PathKind::PiiProbe;
    // The filter drops observed < 0.5 * fixed; exactly half is evidence.
    store.record(kind, 100.0, 50.0, 50.0);
    assert_eq!(store.len(kind), 1, "observed == fixed/2 must be kept");
    store.record(kind, 100.0, 50.0, 49.999);
    assert_eq!(store.len(kind), 1, "observed just below fixed/2 is warm");
}

#[test]
fn refit_below_min_samples_is_a_noop() {
    use upi_query::cost::{CalibrationStore, MIN_REFIT_SAMPLES};
    use upi_query::CostModel;

    let mut store = CalibrationStore::new();
    let kind = PathKind::RangeRun;
    for _ in 0..MIN_REFIT_SAMPLES - 1 {
        store.record(kind, 0.0, 10.0, 40.0); // wildly mispriced, but...
    }
    let mut model = CostModel::from_disk(&DiskConfig::default());
    let outcomes = model.refit(&store);
    assert!(
        outcomes.is_empty(),
        "{} samples are below the refit minimum",
        MIN_REFIT_SAMPLES - 1
    );
    assert_eq!(model.scale(kind), 1.0, "no kind's scale may move");
    // One more sample crosses the threshold and the same refit acts.
    store.record(kind, 0.0, 10.0, 40.0);
    let outcomes = model.refit(&store);
    assert_eq!(outcomes.len(), 1);
    assert!(model.scale(kind) > 1.0);
}
