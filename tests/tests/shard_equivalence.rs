//! Shard equivalence oracle: a [`ShardedDb`] — one logical table hash-
//! or range-partitioned across N independent stores, each shard with its
//! own buffer pool, statistics, and planner — must be *byte-equal* to a
//! single-table [`UncertainDb`] facade holding the same rows, for every
//! classic query shape (`ptq`, `ptq_range`, `ptq_secondary`, `top_k`),
//! across randomized shard counts, routing layouts, physical layouts,
//! and interleaved insert/delete/update DML.
//!
//! "Byte-equal" is literal: fingerprints compare `confidence.to_bits()`,
//! not a rounded value, so the scatter-gather merge (including the
//! shared-watermark top-k fast path) may not differ from the unsharded
//! answer even in the last ULP. Both sides are flushed before comparison
//! because fractured insert-buffer rows carry exact confidences while
//! flushed heap rows carry quantized ones, and auto-flush boundaries
//! necessarily differ between one table and N shards.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

use upi::{FracturedConfig, ShardLayout, TableLayout, UpiConfig};
use upi_query::{PtqResult, ShardedDb, UncertainDb};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

fn schema() -> Schema {
    Schema::new(vec![
        ("g", FieldKind::U64),
        ("prim", FieldKind::Discrete),
        ("sec", FieldKind::Discrete),
    ])
}

/// A random PMF over a small value domain, deduped and normalized.
fn pmf_strategy(domain: u64) -> impl Strategy<Value = DiscretePmf> {
    proptest::collection::vec((0u64..domain, 0.01f64..1.0), 1..4).prop_map(|raw| {
        let mut alts: Vec<(u64, f64)> = Vec::new();
        for (v, w) in raw {
            match alts.iter_mut().find(|(av, _)| *av == v) {
                Some((_, aw)) => *aw += w,
                None => alts.push((v, w)),
            }
        }
        let total: f64 = alts.iter().map(|(_, w)| w).sum();
        let scale = 0.999 / total.max(1.0);
        DiscretePmf::new(
            alts.into_iter()
                .map(|(v, w)| (v, (w * scale).max(1e-6)))
                .collect(),
        )
    })
}

fn tuple_strategy(id: u64) -> impl Strategy<Value = Tuple> {
    (0.05f64..=1.0, pmf_strategy(8), pmf_strategy(6)).prop_map(move |(exist, prim, sec)| {
        Tuple::new(
            TupleId(id),
            exist,
            vec![
                Field::Certain(Datum::U64(id % 4)),
                Field::Discrete(prim),
                Field::Discrete(sec),
            ],
        )
    })
}

fn table_strategy() -> impl Strategy<Value = Vec<Tuple>> {
    (1usize..30).prop_flat_map(|n| (0..n as u64).map(tuple_strategy).collect::<Vec<_>>())
}

/// A tuple with a random id from a small domain, so later rounds update
/// (same id, newer version shadows) or revive (delete then re-insert)
/// earlier rows as often as they add fresh ones.
fn any_tuple_strategy() -> impl Strategy<Value = Tuple> {
    (0u64..40).prop_flat_map(tuple_strategy)
}

/// One maintenance round: tuples to insert/update, then ids to delete.
fn rounds_strategy() -> impl Strategy<Value = Vec<(Vec<Tuple>, Vec<u64>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any_tuple_strategy(), 0..8),
            proptest::collection::vec(0u64..40, 0..6),
        ),
        1..=3,
    )
}

/// Random id-routing layout: hash-partitioned over 1–5 shards, or
/// range-partitioned by random sorted bounds over the id domain.
fn shard_layout_strategy() -> impl Strategy<Value = ShardLayout> {
    prop_oneof![
        (1usize..=5).prop_map(ShardLayout::HashTid),
        proptest::collection::btree_set(1u64..40, 1..4)
            .prop_map(|bounds| ShardLayout::RangeTid(bounds.into_iter().collect())),
    ]
}

/// Random physical layout shared by every shard and the facade: a plain
/// clustered UPI, or a fractured UPI whose auto-flush threshold differs
/// per choice (so the sharded and unsharded sides fracture at different
/// points in the same history).
fn table_layout_strategy() -> impl Strategy<Value = TableLayout> {
    (
        0.0f64..=0.8,
        prop_oneof![Just(None), (0usize..10).prop_map(Some)],
    )
        .prop_map(|(cutoff, buffer_ops)| {
            let cfg = UpiConfig {
                cutoff,
                ..UpiConfig::default()
            };
            match buffer_ops {
                None => TableLayout::Upi(cfg),
                Some(buffer_ops) => TableLayout::FracturedUpi(FracturedConfig {
                    upi: cfg,
                    buffer_ops,
                }),
            }
        })
}

/// Byte-exact fingerprint: `(tid, confidence bits)` in result order.
/// Both sides emit the canonical order (confidence descending, ties by
/// ascending tuple id), so the comparison covers ordering too.
fn fingerprint(rows: &[PtqResult]) -> Vec<(u64, u64)> {
    rows.iter()
        .map(|r| (r.tuple.id.0, r.confidence.to_bits()))
        .collect()
}

/// Recovery must re-seed the global id horizon from the per-shard
/// `next_id` high-water marks, not from the surviving rows: deleting
/// the highest-id tuple before the crash leaves the live maximum
/// *below* an id the table has already issued, and a post-recovery
/// insert that rescanned live tuples would re-issue it — silently
/// shadowing (or colliding with) history on a hash layout.
#[test]
fn recovered_sharded_db_never_reuses_a_deleted_id() {
    let sts: Vec<Store> = (0..3).map(|_| store()).collect();
    let layout = ShardLayout::HashTid(3);
    let mut sharded = ShardedDb::create(
        sts.clone(),
        "rec",
        schema(),
        1,
        TableLayout::Upi(UpiConfig::default()),
        layout.clone(),
    )
    .unwrap();
    sharded.enable_durability().unwrap();
    let fields = |v: u64| {
        vec![
            Field::Certain(Datum::U64(0)),
            Field::Discrete(DiscretePmf::new(vec![(v, 0.9)])),
            Field::Discrete(DiscretePmf::new(vec![(v % 6, 0.5)])),
        ]
    };
    let mut last = TupleId(0);
    for i in 0..30u64 {
        last = sharded.insert(1.0, fields(i % 8)).unwrap();
    }
    let victim = sharded
        .live_tuples()
        .unwrap()
        .into_iter()
        .max_by_key(|t| t.id.0)
        .unwrap();
    assert_eq!(victim.id, last, "inserts issue ascending ids");
    sharded.delete(&victim).unwrap();
    sharded.sync_wal().unwrap();
    drop(sharded);

    let (mut recovered, _) = ShardedDb::recover(sts, "rec", layout).unwrap();
    let before = recovered.ptq(3, 0.0).unwrap().len();
    let id = recovered.insert(1.0, fields(3)).unwrap();
    assert!(
        id.0 > last.0,
        "post-recovery insert re-issued id {} (the deleted horizon was {})",
        id.0,
        last.0
    );
    let after = recovered.ptq(3, 0.0).unwrap();
    assert_eq!(
        after.len(),
        before + 1,
        "the fresh row must coexist with every recovered one"
    );
    assert_eq!(
        after.iter().filter(|r| r.tuple.id == id).count(),
        1,
        "exactly one row carries the fresh id"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    #[test]
    fn sharded_queries_byte_equal_single_table(
        initial in table_strategy(),
        rounds in rounds_strategy(),
        shard_layout in shard_layout_strategy(),
        table_layout in table_layout_strategy(),
        value in 0u64..8,
        sec_value in 0u64..6,
        qt in 0.0f64..=0.9,
        k in 1usize..6,
        lo in 0u64..8,
        width in 0u64..4,
    ) {
        let n = shard_layout.n_shards();
        let mut sharded = ShardedDb::create(
            (0..n).map(|_| store()).collect(),
            "t",
            schema(),
            1,
            table_layout.clone(),
            shard_layout,
        )
        .unwrap();
        sharded.add_secondary(2).unwrap();

        let mut single =
            UncertainDb::create(store(), "t", schema(), 1, table_layout).unwrap();
        single.add_secondary(2).unwrap();

        sharded.load(&initial).unwrap();
        single.load(&initial).unwrap();
        let mut model: BTreeMap<u64, Tuple> = BTreeMap::new();
        for t in &initial {
            model.insert(t.id.0, t.clone());
        }

        for (inserts, deletes) in rounds {
            for t in inserts {
                match model.insert(t.id.0, t.clone()) {
                    // Same id alive on both sides: an in-place update.
                    Some(old) => {
                        sharded.update(&old, &t).unwrap();
                        single.update(&old, &t).unwrap();
                    }
                    None => {
                        sharded.insert_tuple(&t).unwrap();
                        single.insert_tuple(&t).unwrap();
                    }
                }
            }
            for id in deletes {
                if let Some(old) = model.remove(&id) {
                    sharded.delete(&old).unwrap();
                    single.delete(&old).unwrap();
                }
            }
        }

        // Flush both sides: insert-buffer rows carry exact confidences,
        // flushed heap rows carry quantized ones, and the two sides hit
        // their auto-flush thresholds at different points — only the
        // all-flushed state is byte-comparable. (No-op for plain UPI.)
        sharded.flush().unwrap();
        single.flush().unwrap();

        let hi = (lo + width).min(7);
        prop_assert_eq!(
            fingerprint(&sharded.ptq(value, qt).unwrap()),
            fingerprint(&single.ptq(value, qt).unwrap()),
            "ptq({value}, {qt}) diverged over {n} shards",
        );
        prop_assert_eq!(
            fingerprint(&sharded.ptq_range(lo, hi, qt).unwrap()),
            fingerprint(&single.ptq_range(lo, hi, qt).unwrap()),
            "ptq_range({lo}, {hi}, {qt}) diverged over {n} shards",
        );
        prop_assert_eq!(
            fingerprint(&sharded.ptq_secondary(0, sec_value, qt).unwrap()),
            fingerprint(&single.ptq_secondary(0, sec_value, qt).unwrap()),
            "ptq_secondary(0, {sec_value}, {qt}) diverged over {n} shards",
        );
        // The scatter-gather fast path: per-shard confidence-ordered
        // cursors under one shared top-k watermark.
        prop_assert_eq!(
            fingerprint(&sharded.top_k(value, k).unwrap()),
            fingerprint(&single.top_k(value, k).unwrap()),
            "top_k({value}, {k}) diverged over {n} shards",
        );
    }
}
