//! Cross-index consistency: for the same generated table, every access
//! path — full scan, PII, UPI (any cutoff), fractured UPI — must return
//! exactly the same PTQ answers.

use std::sync::Arc;

use upi::{DiscreteUpi, FracturedConfig, FracturedUpi, Pii, UnclusteredHeap, UpiConfig};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_uncertain::Tuple;
use upi_workloads::dblp::{self, author_fields, DblpConfig};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 16 << 20)
}

/// Ground truth by brute force over the tuple list.
fn scan_truth(tuples: &[Tuple], attr: usize, value: u64, qt: f64) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = tuples
        .iter()
        .filter_map(|t| {
            let conf = t.confidence_eq(attr, value);
            // Compare on the index's quantized probability grid so boundary
            // thresholds agree.
            let q = upi_storage::codec::quantize_prob(conf);
            if upi_storage::codec::dequantize_prob(q) >= qt && conf > 0.0 {
                Some((t.id.0, q as u64))
            } else {
                None
            }
        })
        .collect();
    out.sort_unstable();
    out
}

fn results_to_pairs(results: &[upi::PtqResult]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = results
        .iter()
        .map(|r| {
            (
                r.tuple.id.0,
                upi_storage::codec::quantize_prob(r.confidence) as u64,
            )
        })
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn every_access_path_agrees_on_dblp() {
    let data = dblp::generate(&DblpConfig::tiny());
    let tuples = &data.authors;
    let attr = author_fields::INSTITUTION;
    let st = store();

    let mut heap = UnclusteredHeap::create(st.clone(), "heap", 8192).unwrap();
    heap.bulk_load(tuples).unwrap();
    let mut pii = Pii::create(st.clone(), "pii", attr, 8192).unwrap();
    pii.bulk_load(tuples).unwrap();

    let mut upis = Vec::new();
    for (i, c) in [0.0, 0.1, 0.5, 0.99].into_iter().enumerate() {
        let mut u = DiscreteUpi::create(
            st.clone(),
            &format!("upi{i}"),
            attr,
            UpiConfig {
                cutoff: c,
                ..UpiConfig::default()
            },
        )
        .unwrap();
        u.bulk_load(tuples).unwrap();
        upis.push(u);
    }

    let mut fractured = FracturedUpi::create(
        st.clone(),
        "fupi",
        attr,
        &[],
        FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops: 0,
        },
    )
    .unwrap();
    // Load a third initially, flush a third as a fracture, keep a third
    // buffered — the query must span all components.
    let third = tuples.len() / 3;
    fractured.load_initial(&tuples[..third]).unwrap();
    for t in &tuples[third..2 * third] {
        fractured.insert(t.clone()).unwrap();
    }
    fractured.flush().unwrap();
    for t in &tuples[2 * third..] {
        fractured.insert(t.clone()).unwrap();
    }

    let keys = [
        data.popular_institution(),
        data.selective_institution(),
        17,
        999_999, // absent value
    ];
    for value in keys {
        for qt in [0.01, 0.05, 0.2, 0.5, 0.9] {
            let truth = scan_truth(tuples, attr, value, qt);
            let via_pii = results_to_pairs(&pii.ptq(&heap, value, qt).unwrap());
            assert_eq!(via_pii, truth, "PII value={value} qt={qt}");
            for (i, u) in upis.iter().enumerate() {
                let got = results_to_pairs(&u.ptq(value, qt).unwrap());
                assert_eq!(got, truth, "UPI#{i} value={value} qt={qt}");
            }
            let via_fr = results_to_pairs(&fractured.ptq(value, qt).unwrap());
            assert_eq!(via_fr, truth, "fractured value={value} qt={qt}");
        }
    }
}

#[test]
fn secondary_paths_agree_with_truth() {
    let data = dblp::generate(&DblpConfig::tiny());
    let tuples = &data.authors;
    let st = store();
    let mut heap = UnclusteredHeap::create(st.clone(), "heap", 8192).unwrap();
    heap.bulk_load(tuples).unwrap();
    let mut pii_country = Pii::create(st.clone(), "piic", author_fields::COUNTRY, 8192).unwrap();
    pii_country.bulk_load(tuples).unwrap();
    let mut upi = DiscreteUpi::create(
        st.clone(),
        "upi",
        author_fields::INSTITUTION,
        UpiConfig::default(),
    )
    .unwrap();
    upi.add_secondary(author_fields::COUNTRY).unwrap();
    upi.bulk_load(tuples).unwrap();

    for country in [0u64, 1, 3, 7] {
        for qt in [0.05, 0.3, 0.7] {
            let truth = scan_truth(tuples, author_fields::COUNTRY, country, qt);
            let a = results_to_pairs(&pii_country.ptq(&heap, country, qt).unwrap());
            let b = results_to_pairs(&upi.ptq_secondary(0, country, qt, false).unwrap());
            let c = results_to_pairs(&upi.ptq_secondary(0, country, qt, true).unwrap());
            assert_eq!(a, truth, "pii country={country} qt={qt}");
            assert_eq!(b, truth, "plain country={country} qt={qt}");
            assert_eq!(c, truth, "tailored country={country} qt={qt}");
        }
    }
}

#[test]
fn upi_incremental_equals_bulk_on_workload() {
    let data = dblp::generate(&DblpConfig::tiny());
    let attr = author_fields::INSTITUTION;
    let st = store();
    let mut bulk = DiscreteUpi::create(st.clone(), "bulk", attr, UpiConfig::default()).unwrap();
    bulk.bulk_load(&data.authors).unwrap();
    let mut incr = DiscreteUpi::create(st.clone(), "incr", attr, UpiConfig::default()).unwrap();
    for t in &data.authors {
        incr.insert(t).unwrap();
    }
    assert_eq!(bulk.heap_stats().entries, incr.heap_stats().entries);
    assert_eq!(bulk.cutoff_index().len(), incr.cutoff_index().len());
    for value in [data.popular_institution(), 5, 42] {
        for qt in [0.02, 0.2, 0.6] {
            assert_eq!(
                results_to_pairs(&bulk.ptq(value, qt).unwrap()),
                results_to_pairs(&incr.ptq(value, qt).unwrap()),
                "value={value} qt={qt}"
            );
        }
    }
}

#[test]
fn deletes_propagate_through_every_path() {
    let data = dblp::generate(&DblpConfig::tiny());
    let attr = author_fields::INSTITUTION;
    let st = store();
    let mut heap = UnclusteredHeap::create(st.clone(), "heap", 8192).unwrap();
    heap.bulk_load(&data.authors).unwrap();
    let mut pii = Pii::create(st.clone(), "pii", attr, 8192).unwrap();
    pii.bulk_load(&data.authors).unwrap();
    let mut upi = DiscreteUpi::create(st.clone(), "upi", attr, UpiConfig::default()).unwrap();
    upi.bulk_load(&data.authors).unwrap();

    // Delete every 7th tuple.
    let mut remaining: Vec<Tuple> = Vec::new();
    for (i, t) in data.authors.iter().enumerate() {
        if i % 7 == 0 {
            heap.delete(t.id).unwrap();
            pii.delete(t).unwrap();
            upi.delete(t).unwrap();
        } else {
            remaining.push(t.clone());
        }
    }
    let value = data.popular_institution();
    for qt in [0.05, 0.3] {
        let truth = scan_truth(&remaining, attr, value, qt);
        assert_eq!(results_to_pairs(&pii.ptq(&heap, value, qt).unwrap()), truth);
        assert_eq!(results_to_pairs(&upi.ptq(value, qt).unwrap()), truth);
    }
}
