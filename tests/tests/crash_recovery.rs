//! Crash-recovery property oracle: kill the device at an arbitrary
//! operation inside a randomized DML workload (optionally with torn-page
//! and transient-fault injection armed), recover, and require that the
//! recovered table equals the **in-memory possible-worlds model** folded
//! over exactly the durable prefix of the logical WAL — on the raw live
//! tuple set and on every access path the planner can force.
//!
//! The invariants, per seed:
//!
//! 1. **Durable prefix**: the recovered state is the fold of the ops with
//!    `lsn ≤ RecoveryInfo::durable_lsn` — never a mix that applies a later
//!    op without an earlier one.
//! 2. **At-least-acknowledged** (kill/transient runs): the recovered
//!    horizon is ≥ the `durable_lsn` the crashed session had acknowledged.
//!    (Torn-page runs are exempt by design: a tear silently corrupts a
//!    write the device reported as complete, so an acknowledged group can
//!    lose its tail — the CRC chain still guarantees invariant 1.)
//! 3. **Path agreement**: planner choice and every forced candidate on
//!    the recovered table agree with a reference table freshly built from
//!    the model state, across point / secondary / range / top-k / group
//!    query shapes.
//! 4. **Calibration survives**: the recovered session's cost-model scales
//!    equal the scales serialized into the checkpoint recovery restored.
//!
//! Seeds come from `UPI_CRASH_SEEDS` (comma-separated) or a fixed
//! default matrix; the failing seed is printed before each run so CI
//! failures are reproducible with `UPI_CRASH_SEEDS=<seed>`.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use upi::{FracturedConfig, TableLayout, UpiConfig};
use upi_query::{PhysicalPlan, PtqQuery, QueryOutput, UncertainDb};
use upi_storage::{DiskConfig, FaultPlan, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema, Tuple, TupleId};

/// One logical DML op, as the ground-truth model sees it.
#[derive(Debug, Clone)]
enum Op {
    Insert(Tuple),
    Delete(Tuple),
    Update(Tuple, Tuple),
}

fn schema() -> Schema {
    Schema::new(vec![
        ("g", FieldKind::U64),
        ("prim", FieldKind::Discrete),
        ("sec", FieldKind::Discrete),
    ])
}

/// Random tuple: 1–3 distinct primary alternatives over a domain of 8,
/// 1–2 secondary alternatives over a domain of 6, existence in
/// `[0.05, 1.0]`. Probabilities normalized to sum below 1.
fn gen_pmf(rng: &mut StdRng, domain: u64, max_alts: usize) -> DiscretePmf {
    let n = rng.gen_range(1..=max_alts);
    let mut values: Vec<u64> = (0..domain).collect();
    for i in (1..values.len()).rev() {
        let j = rng.gen_range(0..=i);
        values.swap(i, j);
    }
    let mut alts: Vec<(u64, f64)> = values
        .into_iter()
        .take(n)
        .map(|v| (v, rng.gen_range(0.05f64..1.0)))
        .collect();
    let total: f64 = alts.iter().map(|(_, w)| w).sum();
    let scale = rng.gen_range(0.5f64..0.98) / total;
    for (_, w) in &mut alts {
        *w = (*w * scale).max(1e-6);
    }
    DiscretePmf::new(alts)
}

fn gen_tuple(rng: &mut StdRng, id: u64) -> Tuple {
    let exist = rng.gen_range(0.05f64..=1.0);
    Tuple::new(
        TupleId(id),
        exist,
        vec![
            Field::Certain(Datum::U64(id % 4)),
            Field::Discrete(gen_pmf(rng, 8, 3)),
            Field::Discrete(gen_pmf(rng, 6, 2)),
        ],
    )
}

/// Comparable fingerprint (same shape as `planner_equivalence.rs`).
fn fingerprint(out: &QueryOutput) -> Vec<(u64, u64)> {
    match &out.groups {
        Some(g) => g.clone(),
        None => {
            let mut rows: Vec<(u64, u64)> = out
                .rows
                .iter()
                .map(|r| (r.tuple.id.0, (r.confidence * 1e9).round() as u64))
                .collect();
            rows.sort_unstable();
            rows
        }
    }
}

fn layout_for(seed: u64, rng: &mut StdRng) -> TableLayout {
    let cutoff = rng.gen_range(0.0f64..0.6);
    let cfg = UpiConfig {
        cutoff,
        ..UpiConfig::default()
    };
    match seed % 3 {
        0 => TableLayout::Unclustered,
        1 => TableLayout::Upi(cfg),
        _ => TableLayout::FracturedUpi(FracturedConfig {
            upi: cfg,
            buffer_ops: rng.gen_range(0..6),
        }),
    }
}

fn run_seed(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let torn = seed.is_multiple_of(3);
    let transient = seed.is_multiple_of(2);

    let disk_cfg = DiskConfig {
        wal_group_ops: [1, 4, 8, 32][(seed % 4) as usize],
        ..DiskConfig::default()
    };
    let st = Store::new(Arc::new(SimDisk::new(disk_cfg)), 8 << 20);
    let layout = layout_for(seed, &mut rng);
    let is_fractured = matches!(layout, TableLayout::FracturedUpi(_));

    let mut db = UncertainDb::create(st.clone(), "t", schema(), 1, layout).unwrap();
    db.add_secondary(2).unwrap();
    let enable_lsn = db.enable_durability().unwrap();

    // Ground truth: (lsn, op) for every logical record that reached the
    // WAL (even if the apply then failed — logged means recovery replays
    // it when durable), plus the scales serialized into each checkpoint.
    let mut log: Vec<(u64, Op)> = Vec::new();
    let mut live: BTreeMap<u64, Tuple> = BTreeMap::new();
    let mut ckpt_scales: Vec<(u64, [f64; 6])> = Vec::new();
    let scales_of = |db: &UncertainDb| -> [f64; 6] {
        let m = db.cost_model();
        let mut s = [0.0; 6];
        for (i, (scale, _)) in m.export_scales().iter().enumerate() {
            s[i] = *scale;
        }
        s
    };
    ckpt_scales.push((enable_lsn.0, scales_of(&db)));

    let total_ops = rng.gen_range(40..90);
    let arm_after = rng.gen_range(5..25);
    let mut next_id = 0u64;
    let mut last_lsn = db.table().last_lsn().0;

    for step in 0..total_ops {
        if step == arm_after {
            let mut plan = FaultPlan::kill_at(rng.gen_range(5..400));
            if torn {
                plan.torn_write_at = Some(rng.gen_range(1..40));
            }
            if transient {
                plan.transient_read_p = 0.01;
                plan.transient_write_p = 0.04;
                plan.seed = seed.wrapping_mul(0x9E37_79B9);
            }
            st.disk.set_fault_plan(plan);
        }
        let roll = rng.gen_range(0u32..100);
        let mut pending: Option<Op> = None;
        let res = if roll < 40 || live.is_empty() {
            let t = gen_tuple(&mut rng, next_id);
            next_id += 1;
            pending = Some(Op::Insert(t.clone()));
            db.insert_tuple(&t)
        } else if roll < 55 {
            let ids: Vec<u64> = live.keys().copied().collect();
            let victim = live[&ids[rng.gen_range(0..ids.len())]].clone();
            pending = Some(Op::Delete(victim.clone()));
            db.delete(&victim)
        } else if roll < 70 {
            let ids: Vec<u64> = live.keys().copied().collect();
            let old = live[&ids[rng.gen_range(0..ids.len())]].clone();
            let new = gen_tuple(&mut rng, old.id.0);
            pending = Some(Op::Update(old.clone(), new.clone()));
            db.update(&old, &new)
        } else if roll < 80 {
            // Queries: feed calibration, advance the fault op counter on
            // the read side, and occasionally refit so checkpoints carry
            // evolving scales. Their errors don't end the workload.
            let _ = db.ptq(rng.gen_range(0..8), rng.gen_range(0.0f64..0.8));
            if roll % 3 == 0 {
                let _ = db.recalibrate();
            }
            Ok(())
        } else if roll < 85 && is_fractured {
            db.flush()
        } else if roll < 88 && is_fractured {
            db.merge()
        } else if roll < 94 {
            match db.checkpoint() {
                Ok(lsn) => {
                    ckpt_scales.push((lsn.0, scales_of(&db)));
                    Ok(())
                }
                Err(e) => Err(e),
            }
        } else {
            db.sync_wal().map(|_| ())
        };

        // A logged record (lsn advanced) is ground truth whether or not
        // the apply survived; fold order is the lsn order.
        let now = db.table().last_lsn().0;
        if now > last_lsn {
            last_lsn = now;
            if let Some(op) = pending {
                match &op {
                    Op::Insert(t) => {
                        live.insert(t.id.0, t.clone());
                    }
                    Op::Delete(t) => {
                        live.remove(&t.id.0);
                    }
                    Op::Update(old, new) => {
                        live.remove(&old.id.0);
                        live.insert(new.id.0, new.clone());
                    }
                }
                log.push((now, op));
            }
        }
        if std::env::var("UPI_CRASH_TRACE").is_ok() {
            let ids: Vec<u64> = db
                .table()
                .live_tuples()
                .map(|v| v.iter().map(|t| t.id.0).collect())
                .unwrap_or_default();
            eprintln!("  live {ids:?}");
            eprintln!(
                "step {step} roll {roll} lsn {now} res {:?} op {:?}",
                res.as_ref().map(|_| ()),
                log.last().map(|(l, o)| (
                    l,
                    match o {
                        Op::Insert(t) => format!("ins {}", t.id.0),
                        Op::Delete(t) => format!("del {}", t.id.0),
                        Op::Update(o2, n) => format!("upd {}->{}", o2.id.0, n.id.0),
                    }
                ))
            );
        }
        if res.is_err() {
            break; // crashed, degraded, or a transient defeated retry
        }
    }

    let acked = db.table().durable_lsn().0;
    drop(db);

    // --- Recover and check the invariants --------------------------------
    let (rdb, info) = UncertainDb::recover(st.clone(), "t").unwrap();
    if std::env::var("UPI_CRASH_TRACE").is_ok() {
        eprintln!(
            "acked {acked} durable {} replayed {} truncated {} ckpts {:?}",
            info.durable_lsn.0,
            info.replayed,
            info.log_truncated,
            ckpt_scales.iter().map(|(l, _)| *l).collect::<Vec<_>>()
        );
    }
    assert!(
        info.durable_lsn.0 <= last_lsn,
        "seed {seed}: durable horizon {} beyond anything logged ({last_lsn})",
        info.durable_lsn.0
    );
    if !torn {
        assert!(
            info.durable_lsn.0 >= acked,
            "seed {seed}: recovery lost acknowledged records \
             (recovered {} < acked {acked})",
            info.durable_lsn.0
        );
    }

    // Invariant 1: recovered live set == fold of the durable prefix.
    let mut expect: BTreeMap<u64, Tuple> = BTreeMap::new();
    for (lsn, op) in &log {
        if *lsn > info.durable_lsn.0 {
            break;
        }
        match op {
            Op::Insert(t) => {
                expect.insert(t.id.0, t.clone());
            }
            Op::Delete(t) => {
                expect.remove(&t.id.0);
            }
            Op::Update(old, new) => {
                expect.remove(&old.id.0);
                expect.insert(new.id.0, new.clone());
            }
        }
    }
    let mut recovered = rdb.table().live_tuples().unwrap();
    recovered.sort_by_key(|t| t.id.0);
    let expected: Vec<Tuple> = expect.values().cloned().collect();
    assert_eq!(
        recovered, expected,
        "seed {seed}: recovered live set differs from the possible-worlds \
         model folded to lsn {}",
        info.durable_lsn.0
    );

    // Invariant 4: recovered calibration scales match a durable
    // checkpoint's serialized scales — and without tear injection,
    // exactly the last one recovery could have used.
    let got = scales_of(&rdb);
    let close = |a: &[f64; 6], b: &[f64; 6]| a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-12);
    if torn {
        assert!(
            ckpt_scales
                .iter()
                .any(|(lsn, s)| *lsn <= info.durable_lsn.0 && close(s, &got)),
            "seed {seed}: recovered scales match no durable checkpoint"
        );
    } else {
        let last = ckpt_scales
            .iter()
            .rfind(|(lsn, _)| *lsn <= info.durable_lsn.0)
            .expect("at least the enable_durability checkpoint is durable");
        assert!(
            close(&last.1, &got),
            "seed {seed}: recovered scales {:?} != checkpoint scales {:?} \
             (ckpt lsn {})",
            got,
            last.1,
            last.0
        );
    }

    // Invariant 3: planner choice and every forced path on the recovered
    // table agree with a reference table built from the model state.
    let ref_store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let mut reference = UncertainDb::create(
        ref_store,
        "ref",
        schema(),
        1,
        TableLayout::Upi(UpiConfig::default()),
    )
    .unwrap();
    reference.add_secondary(2).unwrap();
    reference.load(&expected).unwrap();

    let queries = vec![
        PtqQuery::eq(1, rng.gen_range(0..8)).with_qt(rng.gen_range(0.0f64..0.8)),
        PtqQuery::eq(1, rng.gen_range(0..8)).with_qt(0.0),
        PtqQuery::eq(2, rng.gen_range(0..6)).with_qt(rng.gen_range(0.0f64..0.6)),
        PtqQuery::eq(1, rng.gen_range(0..8))
            .with_qt(rng.gen_range(0.0f64..0.5))
            .with_top_k(3),
        PtqQuery::range(1, 1, 5).with_qt(rng.gen_range(0.0f64..0.6)),
        PtqQuery::range(1, 0, 7).with_qt(0.1).with_group_count(0),
    ];
    for q in queries {
        let want = fingerprint(&reference.query(&q).unwrap());
        let got = fingerprint(&rdb.query(&q).unwrap());
        assert_eq!(
            got, want,
            "seed {seed}: recovered planner answer differs from model for {q:?}"
        );
        let catalog = rdb.catalog();
        let plan = q.plan(&catalog).unwrap();
        for cand in &plan.candidates {
            let forced = PhysicalPlan {
                query: q.clone(),
                candidates: vec![cand.clone()],
            };
            let forced_fp = fingerprint(&forced.execute(&catalog).unwrap());
            assert_eq!(
                forced_fp,
                want,
                "seed {seed}: forced path {} disagrees with the model for {q:?}",
                cand.path.label()
            );
        }
    }

    // The recovered incarnation stays fully writable and durable.
    let mut rdb = rdb;
    let t = gen_tuple(&mut rng, next_id);
    rdb.insert_tuple(&t).unwrap();
    rdb.sync_wal().unwrap();
    assert!(rdb.table().read_only_reason().is_none());
    assert!(
        rdb.metrics().recoveries >= 1,
        "seed {seed}: recovery must be visible in session metrics"
    );
}

/// WAL-recycling regression: `checkpoint()` rotates to a fresh WAL
/// generation, seals it, and only then retires the covered one. Kill the
/// device at every op inside the rotation (blob write, old-generation
/// checkpoint sync, rotate, seal, retire — including the window between
/// sealing the new generation and retiring the old, where both
/// generations exist) and require recovery to land exactly on the
/// durable pre-checkpoint state, stay writable, and leave exactly one
/// live WAL generation behind.
#[test]
fn checkpoint_rotation_survives_a_kill_anywhere_inside_it() {
    let mut clean_in_a_row = 0u32;
    let mut kills = 0u32;
    let mut kill_at = 0u64;
    while clean_in_a_row < 3 && kill_at < 200 {
        let st = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
        let mut db = UncertainDb::create(
            st.clone(),
            "t",
            schema(),
            1,
            TableLayout::Upi(UpiConfig::default()),
        )
        .unwrap();
        db.add_secondary(2).unwrap();
        let mut rng = StdRng::seed_from_u64(0xD15C ^ kill_at);
        let tuples: Vec<Tuple> = (0..40).map(|i| gen_tuple(&mut rng, i)).collect();
        db.load(&tuples).unwrap();
        db.enable_durability().unwrap();
        // A post-checkpoint suffix so recovery exercises replay too.
        let extra = gen_tuple(&mut rng, 100);
        db.insert_tuple(&extra).unwrap();
        db.sync_wal().unwrap();
        let mut expected = tuples.clone();
        expected.push(extra);
        expected.sort_by_key(|t| t.id.0);

        st.disk.set_fault_plan(FaultPlan::kill_at(kill_at));
        let res = db.checkpoint(); // may die anywhere inside the rotation
        if res.is_ok() {
            clean_in_a_row += 1;
        } else {
            clean_in_a_row = 0;
            kills += 1;
        }
        drop(db);

        let (rdb, _info) = UncertainDb::recover(st.clone(), "t").unwrap();
        let mut recovered = rdb.table().live_tuples().unwrap();
        recovered.sort_by_key(|t| t.id.0);
        assert_eq!(
            recovered, expected,
            "kill_at {kill_at}: recovery must land on the durable state"
        );
        let live_gens = st
            .disk
            .file_inventory()
            .into_iter()
            .filter(|(_, name, live)| name == "t.wal" && *live > 0)
            .count();
        assert_eq!(
            live_gens, 1,
            "kill_at {kill_at}: recovery must leave exactly one live WAL \
             generation (retired ones stay retired)"
        );
        let mut rdb = rdb;
        rdb.insert_tuple(&gen_tuple(&mut rng, 200)).unwrap();
        rdb.sync_wal().unwrap();
        assert!(rdb.table().read_only_reason().is_none());
        kill_at += 1;
    }
    assert!(
        clean_in_a_row >= 3,
        "the sweep must walk past the full rotation (stalled at {kill_at})"
    );
    assert!(
        kills >= 3,
        "the sweep must actually kill mid-rotation (only {kills} kills — \
         is the checkpoint not touching the device?)"
    );
}

fn seeds() -> Vec<u64> {
    match std::env::var("UPI_CRASH_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| p.trim().parse().expect("UPI_CRASH_SEEDS: bad seed"))
            .collect(),
        Err(_) => (1..=12).collect(),
    }
}

#[test]
fn kill_anywhere_recovery_matches_the_possible_worlds_model() {
    for seed in seeds() {
        eprintln!("crash-recovery oracle: seed {seed}");
        run_seed(seed);
    }
}
