//! Early-termination proof: a top-k query planned and executed through
//! `upi-query` must read strictly fewer pages than a full scan of the
//! same heap run — measured through `BufferPool` counters, i.e. actual
//! short-circuited I/O, not just truncated output.

use std::sync::Arc;

use upi::{DiscreteUpi, UpiConfig};
use upi_query::{Catalog, PtqQuery};
use upi_storage::{DiskConfig, PoolCounters, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, Tuple, TupleId};

const ATTR: usize = 1;
const HOT_VALUE: u64 = 3;

fn build() -> (Store, DiscreteUpi) {
    let store = Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20);
    let mut upi = DiscreteUpi::create(store.clone(), "hot", ATTR, UpiConfig::default()).unwrap();
    // A ~4 MB heap where the hot value's run is 1/5 of the table —
    // selective enough that the planner picks the clustered run over a
    // full scan, long enough (hundreds of 8 KiB pages) that early
    // termination is measurable.
    let tuples: Vec<Tuple> = (0..12_000)
        .map(|i| {
            let p = 0.55 + (i % 400) as f64 / 1000.0; // 0.55..0.95
            Tuple::new(
                TupleId(i),
                1.0,
                vec![
                    Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(256)))),
                    Field::Discrete(DiscretePmf::new(vec![(i % 5, p)])),
                ],
            )
        })
        .collect();
    upi.bulk_load(&tuples).unwrap();
    (store, upi)
}

fn run(store: &Store, catalog: &Catalog<'_>, q: &PtqQuery) -> (PoolCounters, usize) {
    let plan = q.plan(catalog).unwrap();
    assert!(
        plan.path().label().starts_with("UpiHeap"),
        "expected the clustered run, planner chose {}",
        plan.path().label()
    );
    store.go_cold();
    let out = plan.execute(catalog).unwrap();
    let io = out.io.expect("catalog registered a pool");
    (io, out.len())
}

#[test]
fn top_k_reads_fewer_pages_than_full_run() {
    let (store, upi) = build();
    let catalog = Catalog::new(store.disk.config())
        .with_upi(&upi)
        .with_pool(&store.pool);

    let k = 5;
    let (topk_io, topk_rows) = run(
        &store,
        &catalog,
        &PtqQuery::eq(ATTR, HOT_VALUE).with_qt(0.1).with_top_k(k),
    );
    let (full_io, full_rows) = run(
        &store,
        &catalog,
        &PtqQuery::eq(ATTR, HOT_VALUE).with_qt(0.1),
    );

    assert_eq!(topk_rows, k);
    assert!(full_rows > 100, "the run must be long: {full_rows} rows");
    assert!(
        topk_io.pages_read() < full_io.pages_read(),
        "top-k must short-circuit I/O: {} vs {} pages",
        topk_io.pages_read(),
        full_io.pages_read()
    );
    // The short-circuit is substantial, not off-by-one: the run spans
    // dozens of pages but k rows live on the first few.
    assert!(
        topk_io.pages_read() * 4 <= full_io.pages_read(),
        "expected a wide margin: {} vs {} pages",
        topk_io.pages_read(),
        full_io.pages_read()
    );

    // Sanity: both executions return the same top-k prefix.
    store.go_cold();
    let full = PtqQuery::eq(ATTR, HOT_VALUE)
        .with_qt(0.1)
        .run(&catalog)
        .unwrap();
    store.go_cold();
    let top = PtqQuery::eq(ATTR, HOT_VALUE)
        .with_qt(0.1)
        .with_top_k(k)
        .run(&catalog)
        .unwrap();
    for (a, b) in top.rows.iter().zip(full.rows.iter()) {
        assert_eq!(a.tuple.id, b.tuple.id);
        assert!((a.confidence - b.confidence).abs() < 1e-12);
    }
}

#[test]
fn readahead_converts_run_tail_into_pool_hits() {
    let (store, upi) = build();
    let catalog = Catalog::new(store.disk.config())
        .with_upi(&upi)
        .with_pool(&store.pool);
    let (io, rows) = run(
        &store,
        &catalog,
        &PtqQuery::eq(ATTR, HOT_VALUE).with_qt(0.1),
    );
    assert!(rows > 100);
    assert!(
        io.readahead > 0,
        "a long clustered run must arm read-ahead: {io}"
    );
    assert!(
        io.readahead_hits > 0,
        "prefetched pages must serve the run: {io}"
    );
}
