//! Per-query device-time attribution, proven at both layers.
//!
//! The simulated device keeps one store-wide clock, so before/after
//! snapshots taken by concurrent queries inflate each other. The
//! attribution layer gives every query its own window: a scoped
//! `BufferPool::attributed(query_id)` guard routes each device charge to
//! the owning query's slot as well as the store-wide ledger. These tests
//! pin the partition identity — **the sum of the attributed slots equals
//! the store-wide delta** — for raw interleaved pool access, for
//! sequential alternating session queries, and for genuinely concurrent
//! sessions on two threads; plus the determinism corollary: trace
//! timestamps come from the *per-query* attributed clock only, so two
//! identical cold runs render byte-identical span trees even though the
//! store-wide clock has moved between them.

use std::sync::Arc;

use upi::{ShardLayout, TableLayout, UpiConfig};
use upi_query::{PtqQuery, ShardedDb, UncertainDb};
use upi_storage::{DiskConfig, QueryId, SimDisk, Store};
use upi_uncertain::{Datum, DiscretePmf, Field, FieldKind, Schema};

const ATTR: usize = 1;

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

/// A UPI-clustered facade table: 12k rows over 5 values, ~290-byte
/// payloads, so each value's clustered run spans dozens of pages.
fn build() -> UncertainDb {
    let schema = Schema::new(vec![
        ("pad", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ]);
    let mut db = UncertainDb::create(
        store(),
        "attrib",
        schema,
        ATTR,
        TableLayout::Upi(UpiConfig::default()),
    )
    .unwrap();
    let tuples: Vec<upi_uncertain::Tuple> = (0..12_000u64)
        .map(|i| {
            let p = 0.55 + (i % 400) as f64 / 1000.0;
            upi_uncertain::Tuple::new(
                upi_uncertain::TupleId(i),
                1.0,
                vec![
                    Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(256)))),
                    Field::Discrete(DiscretePmf::new(vec![(i % 5, p)])),
                ],
            )
        })
        .collect();
    db.load(&tuples).unwrap();
    db
}

/// Raw pool level: two queries interleave page-at-a-time on one pool;
/// each slot sees exactly its own pages, and the slots partition the
/// store-wide delta.
#[test]
fn interleaved_pool_access_partitions_the_device_clock() {
    let st = store();
    let f = st.disk.create_file("raw", 8192);
    let pages: Vec<_> = (0..32).map(|_| st.disk.alloc_page(f).unwrap()).collect();
    for &p in &pages {
        st.disk
            .write_page(p, bytes::Bytes::from(vec![7u8; 8192]))
            .unwrap();
    }
    st.go_cold();

    let qa = QueryId::next();
    let qb = QueryId::next();
    let before = st.disk.stats();
    // Interleave A and B page-at-a-time. Run detection is suppressed so
    // neither query speculates into the other's pages and the per-slot
    // page counts stay exact.
    for pair in pages.chunks(2) {
        {
            let _g = st.pool.attributed(qa).suppress_run_detection();
            st.pool.get(pair[0]).unwrap();
        }
        {
            let _g = st.pool.attributed(qb).suppress_run_detection();
            st.pool.get(pair[1]).unwrap();
        }
    }
    let delta = st.disk.stats().since(&before);
    let a = st.pool.take_attributed(qa);
    let b = st.pool.take_attributed(qb);

    assert_eq!(a.page_reads, 16, "A reads exactly its own 16 pages");
    assert_eq!(b.page_reads, 16, "B reads exactly its own 16 pages");
    assert_eq!(a.page_reads + b.page_reads, delta.page_reads);
    assert!(a.total_ms() > 0.0 && b.total_ms() > 0.0);
    let sum = a.total_ms() + b.total_ms();
    assert!(
        (sum - delta.total_ms()).abs() < 1e-6,
        "attributed windows must partition the store delta: {sum} vs {}",
        delta.total_ms()
    );
}

/// Session level, alternating: an expensive full-run PTQ and a cheap
/// early-terminating top-k take turns on one pool. Each `QueryOutput`
/// carries only its own device window, and the windows sum to the
/// store-wide delta across the whole phase.
#[test]
fn alternating_session_queries_observe_only_their_own_device_ms() {
    let db = build();
    let st = db.table().store().clone();
    st.go_cold();

    let before = st.disk.stats();
    let mut sum = 0.0;
    let mut pages = 0u64;
    for round in 0..3 {
        // Fresh cold cache per round: the previous round's read-ahead
        // would otherwise pre-warm this round's pages (dropping clean
        // pages costs no device time, so the partition identity below
        // still spans all rounds).
        st.go_cold();
        let expensive = db
            .query(&PtqQuery::eq(ATTR, round % 5).with_qt(0.56))
            .unwrap();
        let cheap = db
            .query(
                &PtqQuery::eq(ATTR, (round + 2) % 5)
                    .with_qt(0.56)
                    .with_top_k(3),
            )
            .unwrap();
        let e = expensive.device.expect("session attributes device time");
        let c = cheap.device.expect("session attributes device time");
        assert!(
            e.total_ms() > 4.0 * c.total_ms(),
            "round {round}: the full run ({:.2} ms) must dwarf the \
             early-terminated top-k ({:.2} ms)",
            e.total_ms(),
            c.total_ms()
        );
        sum += e.total_ms() + c.total_ms();
        pages += e.page_reads + c.page_reads;
    }
    let delta = st.disk.stats().since(&before);
    assert_eq!(pages, delta.page_reads, "every page read is attributed");
    assert!(
        (sum - delta.total_ms()).abs() < 1e-6,
        "attributed windows must sum to the store delta: {sum} vs {}",
        delta.total_ms()
    );
}

/// Two threads race real queries on one shared pool. The thread-local
/// attribution stacks keep the windows disjoint without coordination:
/// the sum of every query's attributed window equals the store-wide
/// delta exactly.
#[test]
fn concurrent_queries_on_one_pool_partition_the_device_clock() {
    let db = build();
    let st = db.table().store().clone();
    st.go_cold();

    let before = st.disk.stats();
    let totals: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2u64)
            .map(|t| {
                let db = &db;
                scope.spawn(move || {
                    let mut sum = 0.0;
                    for round in 0..3u64 {
                        let out = db
                            .query(&PtqQuery::eq(ATTR, (2 * round + t) % 5).with_qt(0.56))
                            .unwrap();
                        // A zero window is legitimate here: the racing
                        // thread's read-ahead may have served this
                        // query's pages entirely from RAM — the point
                        // is that such a query observes *no* device
                        // time, not the store-wide clock.
                        let dev = out.device.expect("session attributes device time");
                        sum += dev.total_ms();
                    }
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let delta = st.disk.stats().since(&before);
    assert!(delta.page_reads > 0, "the racing phase must do real I/O");
    let sum: f64 = totals.iter().sum();
    assert!(
        (sum - delta.total_ms()).abs() < 1e-6,
        "across two racing threads the attributed windows must still \
         partition the store delta: {sum} vs {}",
        delta.total_ms()
    );
    // No thread observed more than the store spent overall.
    for t in &totals {
        assert!(*t >= 0.0 && *t <= delta.total_ms() + 1e-6);
    }
}

/// Three-shard twin of [`build`]: same 12k rows, hash-routed across
/// three independent stores (own disk clocks).
fn build_sharded(name: &str) -> ShardedDb {
    let schema = Schema::new(vec![
        ("pad", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ]);
    let mut db = ShardedDb::create(
        (0..3).map(|_| store()).collect(),
        name,
        schema,
        ATTR,
        TableLayout::Upi(UpiConfig::default()),
        ShardLayout::HashTid(3),
    )
    .unwrap();
    let tuples: Vec<upi_uncertain::Tuple> = (0..12_000u64)
        .map(|i| {
            let p = 0.55 + (i % 400) as f64 / 1000.0;
            upi_uncertain::Tuple::new(
                upi_uncertain::TupleId(i),
                1.0,
                vec![
                    Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(256)))),
                    Field::Discrete(DiscretePmf::new(vec![(i % 5, p)])),
                ],
            )
        })
        .collect();
    db.load(&tuples).unwrap();
    db
}

/// Sharded scatter-gather level: one logical table partitioned across
/// three stores, each with its own simulated device clock, raced by two
/// session threads mixing the watermark-bounded top-k fast path with
/// full scatter PTQs. Every `QueryOutput.device` window is the sum of
/// that query's per-shard attributed slots, so across the whole racing
/// phase **Σ per-query windows = Σ per-shard store-wide deltas** — the
/// partition identity survives the scatter-gather fan-out.
#[test]
fn racing_sharded_queries_partition_every_shard_clock() {
    let db = build_sharded("attrib_sh");

    let stores: Vec<Store> = db
        .shards()
        .iter()
        .map(|s| s.table().store().clone())
        .collect();
    for st in &stores {
        st.go_cold();
    }

    let before: Vec<_> = stores.iter().map(|st| st.disk.stats()).collect();
    let totals: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2u64)
            .map(|t| {
                let db = &db;
                scope.spawn(move || {
                    let mut sum = 0.0;
                    for round in 0..3u64 {
                        // The shared-watermark top-k fast path...
                        let topk = db
                            .query(
                                &PtqQuery::eq(ATTR, (2 * round + t) % 5)
                                    .with_qt(0.56)
                                    .with_top_k(5),
                            )
                            .unwrap();
                        // ...racing a full scatter over every shard.
                        let full = db
                            .query(&PtqQuery::eq(ATTR, (2 * round + t + 1) % 5).with_qt(0.56))
                            .unwrap();
                        for out in [&topk, &full] {
                            let dev = out.device.expect("scatter attributes device time");
                            // As in the single-pool race, a zero window
                            // is legitimate (the rival's read-ahead may
                            // serve a whole shard from RAM).
                            sum += dev.total_ms();
                        }
                    }
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let deltas: Vec<_> = stores
        .iter()
        .zip(&before)
        .map(|(st, b)| st.disk.stats().since(b))
        .collect();
    let delta_sum: f64 = deltas.iter().map(|d| d.total_ms()).sum();
    let delta_pages: u64 = deltas.iter().map(|d| d.page_reads).sum();
    assert!(delta_pages > 0, "the racing phase must do real I/O");
    for d in &deltas {
        assert!(
            d.page_reads > 0,
            "every shard must be touched by the scatter phase"
        );
    }
    let sum: f64 = totals.iter().sum();
    assert!(
        (sum - delta_sum).abs() < 1e-6,
        "across two racing sessions and three shard clocks the attributed \
         windows must partition the combined store delta: {sum} vs {delta_sum}"
    );
}

/// Satellite: trace timestamps come from the per-query attributed device
/// clock only. Two identical cold runs — with the *store-wide* clock
/// advanced in between — must render byte-identical span trees.
#[test]
fn identical_cold_runs_render_byte_identical_traces() {
    let db = build();
    let st = db.table().store().clone();
    let q = PtqQuery::eq(ATTR, 2).with_qt(0.6).with_top_k(7);

    st.go_cold();
    let first = db.query(&q).unwrap().trace.expect("facade queries trace");
    st.go_cold();
    let second = db.query(&q).unwrap().trace.expect("facade queries trace");

    let (a, b) = (first.render(), second.render());
    assert!(
        a.contains("device_ms="),
        "trace must carry per-operator device time:\n{a}"
    );
    assert_ne!(
        first.query_id, second.query_id,
        "each execution gets its own query id"
    );
    assert_eq!(
        a, b,
        "same plan, same cold cache, new store-clock epoch: the rendered \
         trace may not change"
    );
}

/// Concurrency *within* one query: a scatter now runs one worker thread
/// per shard, each re-pinning its own attribution guard on its own
/// pool. For a single query the partition identity must hold across
/// those racing workers — `QueryOutput.device` (the gathered sum of the
/// per-shard slots) equals the sum of the per-shard store-wide deltas,
/// the depth-1 trace spans partition that sum shard-by-shard, and
/// `latency_ms` is their max, strictly below the sum when several
/// shards do real I/O.
#[test]
fn shard_workers_within_one_query_partition_their_own_clocks() {
    let db = build_sharded("attrib_par");
    // Dynamic watermark skips are timing-dependent; disable pruning so
    // every shard provably opens and the per-shard window comparison is
    // deterministic.
    db.set_pruning(false);
    let stores: Vec<Store> = db
        .shards()
        .iter()
        .map(|s| s.table().store().clone())
        .collect();

    let queries = [
        PtqQuery::eq(ATTR, 2).with_qt(0.56),
        PtqQuery::eq(ATTR, 4).with_qt(0.56).with_top_k(5),
    ];
    for q in &queries {
        for st in &stores {
            st.go_cold();
        }
        let before: Vec<_> = stores.iter().map(|st| st.disk.stats()).collect();
        let out = db.query(q).unwrap();
        let deltas: Vec<_> = stores
            .iter()
            .zip(&before)
            .map(|(st, b)| st.disk.stats().since(b))
            .collect();
        for d in &deltas {
            assert!(d.page_reads > 0, "unpruned: every shard must be opened");
        }

        let dev = out.device.expect("scatter attributes device time");
        let delta_pages: u64 = deltas.iter().map(|d| d.page_reads).sum();
        let delta_sum: f64 = deltas.iter().map(|d| d.total_ms()).sum();
        let delta_max = deltas.iter().map(|d| d.total_ms()).fold(0.0, f64::max);
        assert_eq!(
            dev.page_reads, delta_pages,
            "every page the workers read is attributed to this query"
        );
        assert!(
            (dev.total_ms() - delta_sum).abs() < 1e-6,
            "one query's racing workers must partition its shard clocks: \
             {} vs {delta_sum}",
            dev.total_ms()
        );

        // The gathered trace exposes the same partition per shard...
        let trace = out.trace.expect("scatter traces");
        let windows: Vec<f64> = trace
            .spans
            .iter()
            .filter(|s| s.depth == 1)
            .map(|s| s.device_ms.expect("shard spans carry device windows"))
            .collect();
        assert_eq!(windows.len(), stores.len());
        let span_sum: f64 = windows.iter().sum();
        assert!((span_sum - delta_sum).abs() < 1e-6);

        // ...and latency is the max window (parallel semantics), not
        // the calibration-facing sum.
        let latency = out.latency_ms.expect("scatter reports parallel latency");
        let span_max = windows.iter().copied().fold(0.0, f64::max);
        assert!((latency - span_max).abs() < 1e-6);
        assert!((latency - delta_max).abs() < 1e-6);
        assert!(
            latency < delta_sum,
            "with three shards doing real I/O the max must undercut the sum"
        );
    }
}

/// Seeded pruning oracle: a range-sharded table whose second shard
/// stores only low-confidence alternatives for a seeded mix of values.
/// An `Eq` query above that shard's bound skips *opening* it — its disk
/// sees zero reads — yet the answer is byte-equal (ids and confidence
/// bits) to the same query forced to visit every shard.
#[test]
fn skipped_cold_shard_answers_are_byte_equal_to_unskipped() {
    let schema = Schema::new(vec![
        ("pad", FieldKind::Str),
        ("value", FieldKind::Discrete),
    ]);
    let mut db = ShardedDb::create(
        (0..2).map(|_| store()).collect(),
        "attrib_cold",
        schema,
        ATTR,
        TableLayout::Upi(UpiConfig::default()),
        ShardLayout::RangeTid(vec![50_000]),
    )
    .unwrap();
    // Seeded LCG (deterministic across runs) drives values and
    // probabilities. Shard 0: hot, confidences up to ~0.95. Shard 1:
    // the same value mix but every confidence <= 0.3, so its sketch
    // bounds sit below qt for every value regardless of bucket
    // collisions.
    let mut seed = 0xDEAD_BEEFu64;
    let mut rng = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 33
    };
    let mut tuples = Vec::new();
    for i in 0..4_000u64 {
        let hot = rng();
        tuples.push(upi_uncertain::Tuple::new(
            upi_uncertain::TupleId(i),
            1.0,
            vec![
                Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(200)))),
                Field::Discrete(DiscretePmf::new(vec![(
                    hot % 8,
                    0.5 + (hot % 450) as f64 / 1000.0,
                )])),
            ],
        ));
        let cold = rng();
        tuples.push(upi_uncertain::Tuple::new(
            upi_uncertain::TupleId(50_000 + i),
            1.0,
            vec![
                Field::Certain(Datum::Str(format!("pad-{i}-{}", "x".repeat(200)))),
                Field::Discrete(DiscretePmf::new(vec![(
                    cold % 8,
                    0.05 + (cold % 250) as f64 / 1000.0,
                )])),
            ],
        ));
    }
    db.load(&tuples).unwrap();
    assert!(
        db.stats()[1].max_conf() < 0.5,
        "the seeded cold shard must bound below qt"
    );

    let stores: Vec<Store> = db
        .shards()
        .iter()
        .map(|s| s.table().store().clone())
        .collect();
    let fp = |out: &upi_query::QueryOutput| -> Vec<(u64, u64)> {
        out.rows
            .iter()
            .map(|r| (r.tuple.id.0, r.confidence.to_bits()))
            .collect()
    };
    for q in [
        PtqQuery::eq(ATTR, 3).with_qt(0.5).with_top_k(7),
        PtqQuery::eq(ATTR, 3).with_qt(0.5),
    ] {
        // Exhaustive baseline first, then the pruned run on a cold
        // cache so "zero reads" can only mean "never opened".
        db.set_pruning(false);
        for st in &stores {
            st.go_cold();
        }
        let unskipped = db.query(&q).unwrap();

        db.set_pruning(true);
        for st in &stores {
            st.go_cold();
        }
        let skipped_before = db.shards_skipped();
        let cold_before = stores[1].disk.stats();
        let pruned = db.query(&q).unwrap();

        assert!(!pruned.rows.is_empty(), "the hot shard must qualify rows");
        assert_eq!(
            fp(&pruned),
            fp(&unskipped),
            "pruning may only skip work, never change the answer"
        );
        assert!(
            db.shards_skipped() > skipped_before,
            "the cold shard must be pruned"
        );
        assert_eq!(
            stores[1].disk.stats().since(&cold_before).page_reads,
            0,
            "a pruned shard is never opened"
        );
    }
}
