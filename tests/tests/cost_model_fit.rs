//! Cost-model fit: the §6 estimates must track measured runtimes within a
//! reasonable band on live data — the property Figures 10–12 demonstrate.

use std::sync::Arc;

use upi::cost::{
    estimate_cutoff_pointers, estimate_query_cutoff_ms, estimate_query_fractured_ms,
    model_for_fractured,
};
use upi::{DiscreteUpi, FracturedConfig, FracturedUpi, UpiConfig};
use upi_storage::{DiskConfig, SimDisk, Store};
use upi_workloads::dblp::{self, author_fields, DblpConfig};

fn store() -> Store {
    Store::new(Arc::new(SimDisk::new(DiskConfig::default())), 8 << 20)
}

fn cfg() -> DblpConfig {
    DblpConfig {
        n_authors: 12_000,
        payload_bytes: 96,
        ..DblpConfig::default()
    }
}

fn measure(st: &Store, f: impl FnOnce() -> usize) -> f64 {
    st.go_cold();
    let t0 = st.disk.clock_ms();
    f();
    st.disk.clock_ms() - t0
}

#[test]
fn cutoff_pointer_estimates_are_accurate() {
    // Figure 11's property: per-value histogram estimates track reality.
    let data = dblp::generate(&cfg());
    let key = data.popular_institution();
    for c in [0.2, 0.4] {
        let st = store();
        let mut upi = DiscreteUpi::create(
            st,
            "u",
            author_fields::INSTITUTION,
            UpiConfig {
                cutoff: c,
                ..UpiConfig::default()
            },
        )
        .unwrap();
        upi.bulk_load(&data.authors).unwrap();
        for qt in [0.05, 0.15] {
            let real = upi.cutoff_index().scan(key, qt).unwrap().len() as f64;
            let est = estimate_cutoff_pointers(&upi, key, qt);
            assert!(real > 10.0, "need a meaningful pointer count, got {real}");
            let rel = (est - real).abs() / real;
            assert!(
                rel < 0.15,
                "C={c} QT={qt}: estimate {est:.0} vs real {real:.0} ({:.0}% off)",
                rel * 100.0
            );
        }
    }
}

#[test]
fn cutoff_runtime_estimate_tracks_measurement() {
    // Figure 12's property, asserted within a 3x band per cell (the paper
    // shows visual agreement; our band is deliberately loose to stay
    // robust across scales).
    let data = dblp::generate(&cfg());
    let key = data.popular_institution();
    let st = store();
    let mut upi = DiscreteUpi::create(
        st.clone(),
        "u",
        author_fields::INSTITUTION,
        UpiConfig {
            cutoff: 0.3,
            ..UpiConfig::default()
        },
    )
    .unwrap();
    upi.bulk_load(&data.authors).unwrap();
    for qt in [0.05, 0.15, 0.4] {
        let est = estimate_query_cutoff_ms(st.disk.config(), &upi, key, qt);
        let real = measure(&st, || upi.ptq(key, qt).unwrap().len());
        let ratio = est / real;
        assert!(
            (0.33..3.0).contains(&ratio),
            "QT={qt}: est {est:.0}ms vs real {real:.0}ms (ratio {ratio:.2})"
        );
    }
}

#[test]
fn fractured_estimate_tracks_fracture_count() {
    // Figure 10's property: the estimate grows with N_frac like reality.
    let data = dblp::generate(&cfg());
    let key = data.popular_institution();
    let st = store();
    let mut f = FracturedUpi::create(
        st.clone(),
        "f",
        author_fields::INSTITUTION,
        &[],
        FracturedConfig {
            upi: UpiConfig::default(),
            buffer_ops: 0,
        },
    )
    .unwrap();
    f.load_initial(&data.authors).unwrap();
    let mut next_id = data.authors.len() as u64;
    let mut prev_real = 0.0;
    for round in 1..=6 {
        let new = data.more_authors(data.authors.len() / 10, next_id, round);
        next_id += new.len() as u64;
        for t in new {
            f.insert(t).unwrap();
        }
        f.flush().unwrap();
        let est = estimate_query_fractured_ms(st.disk.config(), &f, key, 0.15);
        let real = measure(&st, || f.ptq(key, 0.15).unwrap().len());
        let ratio = est / real;
        assert!(
            (0.4..2.5).contains(&ratio),
            "round {round}: est {est:.0} vs real {real:.0} (ratio {ratio:.2})"
        );
        assert!(real > prev_real, "runtime grows with each fracture");
        prev_real = real;
    }
    // Merging restores performance and the model agrees.
    let model = model_for_fractured(st.disk.config(), &f);
    let predicted_merge = model.merge_cost_ms(f.total_bytes());
    let real_merge = measure(&st, || {
        f.merge().unwrap();
        st.pool.flush_all();
        1
    });
    let after = measure(&st, || f.ptq(key, 0.15).unwrap().len());
    assert!(after < prev_real / 2.0, "merge must restore performance");
    let ratio = real_merge / predicted_merge;
    assert!(
        (0.4..3.0).contains(&ratio),
        "merge: real {real_merge:.0} vs model {predicted_merge:.0}"
    );
}

#[test]
fn saturation_is_observable_and_modeled() {
    // The non-selective low-QT query must NOT cost pointer_count × T_seek
    // (that is the saturation phenomenon of §6.3).
    let data = dblp::generate(&cfg());
    let key = data.popular_institution();
    let st = store();
    let mut upi = DiscreteUpi::create(
        st.clone(),
        "u",
        author_fields::INSTITUTION,
        UpiConfig {
            cutoff: 0.5,
            ..UpiConfig::default()
        },
    )
    .unwrap();
    upi.bulk_load(&data.authors).unwrap();
    let pointers = upi.cutoff_index().scan(key, 0.02).unwrap().len() as f64;
    assert!(pointers > 300.0, "need many pointers, got {pointers}");
    let real = measure(&st, || upi.ptq(key, 0.02).unwrap().len());
    let naive = pointers * st.disk.config().seek_ms;
    assert!(
        real < naive * 0.6,
        "saturation must beat the naive seek model: real {real:.0}ms vs naive {naive:.0}ms"
    );
}
